// Fixture for the errwrap analyzer. The bad cases are distilled from real
// pre-fix violations in this repository: checkQuery's raw "k must be
// positive" error (internal/core/mliq.go before PR 8) and the TIQ threshold
// message, which broke errors.Is matching for remote clients.
package errwrap

import (
	"errors"
	"fmt"
)

// ErrInvalidQuery is the package sentinel; defining it with errors.New at
// package level is of course allowed.
var ErrInvalidQuery = errors.New("errwrap: invalid query")

// good: the repo's canonical wrap shape.
func checkQueryFixed(k int) error {
	if k <= 0 {
		return fmt.Errorf("%w: k must be positive, got %d", ErrInvalidQuery, k)
	}
	return nil
}

// bad: the pre-fix checkQuery — a validation error that wraps nothing.
func checkQueryRaw(k int) error {
	if k <= 0 {
		return errors.New("errwrap: k must be positive") // want "validation/closed error built with errors.New"
	}
	return nil
}

// bad: the pre-fix TIQ threshold message via fmt.Errorf without a sentinel.
func checkThreshold(p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("errwrap: threshold %v outside .0,1.", p) // want "validation/closed error does not wrap a sentinel"
	}
	return nil
}

// bad: the sentinel is mentioned but formatted with %v, so errors.Is no
// longer matches it.
func lostSentinel(q string) error {
	return fmt.Errorf("identification failed for %q: %v", q, ErrInvalidQuery) // want "ErrInvalidQuery passed to fmt.Errorf without %w"
}

// Suppressed: constructor misconfiguration that never crosses the wire; the
// directive must silence the rule-2 finding.
func pageSizeCheck(pageSize int) error {
	if pageSize <= 0 {
		//lint:ignore errwrap process-local constructor validation; no fitting sentinel and never serialized
		return fmt.Errorf("invalid page size %d", pageSize)
	}
	return nil
}
