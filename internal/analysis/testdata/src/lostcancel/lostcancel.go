// Fixture for the lostcancel pass.
package lostcancel

import (
	"context"
	"time"
)

func use(ctx context.Context) { _ = ctx }

// good: deferred cancel covers every return path.
func deferred(ctx context.Context) {
	c, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	use(c)
}

// good: returning the cancel func transfers the obligation to the caller.
func handedOff(ctx context.Context) (context.Context, context.CancelFunc) {
	c, cancel := context.WithCancel(ctx)
	return c, cancel
}

// bad: discarding the cancel func leaks the context and its timer.
func discarded(ctx context.Context) {
	c, _ := context.WithTimeout(ctx, time.Second) // want "the cancel function returned by context.WithTimeout is discarded"
	use(c)
}

// bad: the early return path never cancels.
func leaky(ctx context.Context, cond bool) error {
	c, cancel := context.WithCancel(ctx)
	use(c)
	if cond {
		return nil // want "return path does not call the cancel function cancel"
	}
	cancel()
	return nil
}
