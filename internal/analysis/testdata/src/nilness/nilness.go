// Fixture for the nilness pass.
package nilness

type node struct {
	next *node
	val  int
}

// good: the nil branch returns a constant.
func guarded(n *node) int {
	if n == nil {
		return 0
	}
	return n.val
}

// bad: the guard proves n is nil, then the branch dereferences it.
func inNilBranch(n *node) int {
	if n == nil {
		return n.val // want "n is nil on this path .guarded above.: this field access panics"
	}
	return n.val
}

// bad: the non-nil branch always returns, so the continuation runs only
// when p is nil.
func afterExit(p *int) int {
	if p != nil {
		return *p
	}
	return *p // want "p is nil on this path .guarded above.: this dereference panics"
}
