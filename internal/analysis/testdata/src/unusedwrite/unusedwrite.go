// Fixture for the unusedwrite pass.
package unusedwrite

type stats struct {
	reads int
	hits  int
}

// good: the written field is read afterwards.
func counted() int {
	s := stats{}
	s.hits = 1
	return s.hits
}

// good: writes through a pointer mutate the caller's value.
func throughPointer(s *stats) {
	s.hits = 1
}

// bad: s is a local copy and nothing reads the write back.
func dropped() int {
	s := stats{}
	s.hits = 1 // want "write to s.hits is never read"
	return 0
}
