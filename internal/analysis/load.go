package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	GoFiles   []string // absolute paths, non-test files only
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// TypeErrors holds soft type-check failures. Analyzers still run on a
	// package with type errors (best effort), mirroring x/tools behavior
	// under RunDespiteErrors; the driver reports them separately.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns with the go tool, parses every non-dependency package
// from source, and type-checks it against compiled export data of its
// dependencies (the build cache; `go list -export` compiles what's missing).
// This works fully offline: the only inputs are the repository source and
// the local build cache.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Export data index for the importer: import path -> export file.
	exports := make(map[string]string, len(listed))
	targets := make([]*listedPackage, 0, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := typecheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Error != nil && !lp.DepOnly {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		out = append(out, lp)
	}
	return out, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	pkg := &Package{PkgPath: lp.ImportPath, Dir: lp.Dir, Fset: fset}
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		pkg.GoFiles = append(pkg.GoFiles, path)
		pkg.Syntax = append(pkg.Syntax, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			if mapped, ok := lp.ImportMap[path]; ok {
				path = mapped
			}
			return imp.Import(path)
		}),
		Error: func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, pkg.Syntax, info)
	if tpkg == nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
	}
	pkg.Types = tpkg
	pkg.TypesInfo = info
	return pkg, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
