package analysis

import (
	"go/ast"
)

// WALDurable enforces durability-before-visibility (PR 7): a mutation
// becomes visible to readers the moment the writer publishes a new snapshot
// (treeSnap behind the atomic `snap` pointer), so the WAL record — or,
// without a WAL, the durable meta commit — must exist first, or a crash
// between publish and append acknowledges a mutation that recovery cannot
// replay. Concretely:
//
//  1. the atomic snapshot pointer may only be stored inside the one
//     designated publish function (func publish);
//  2. the reclamation epoch may only be advanced there too (publishing and
//     advancing are one indivisible protocol step);
//  3. every call of publish() must be lexically preceded, in the same
//     function, by a durability call: wal.Append, commitMeta, checkpoint
//     or afterMutation.
//
// Replay/recovery paths that re-publish state already durable in the log
// (Open, ApplyWALTail's no-new-records branch) carry justified
// //lint:ignore waldurable directives.
var WALDurable = &Analyzer{
	Name: "waldurable",
	Doc:  "snapshot publication requires a preceding WAL append (or meta commit): durability before visibility",
	Run:  runWALDurable,
}

// durabilityCalls are the callee names that make the pending mutation
// durable (or delegate to something that does).
var durabilityCalls = map[string]bool{
	"Append":        true, // t.wal.Append
	"commitMeta":    true,
	"checkpoint":    true,
	"afterMutation": true,
}

func runWALDurable(pass *Pass) error {
	for _, fn := range funcDecls(pass.Files) {
		inPublish := fn.Name.Name == "publish"
		var durableAt []ast.Node // durability calls, in source order
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if durabilityCalls[name] {
				durableAt = append(durableAt, call)
				return true
			}
			if !inPublish && isSnapStore(pass, call) {
				pass.Report(call.Pos(), "snapshot pointer stored outside publish(): all visibility goes through the one WAL-ordered publish path")
			}
			if !inPublish && name == "AdvanceEpoch" {
				pass.Report(call.Pos(), "AdvanceEpoch called outside publish(): storing the snapshot and advancing the epoch are one protocol step")
			}
			if name == "publish" && len(call.Args) == 0 {
				preceded := false
				for _, d := range durableAt {
					if d.Pos() < call.Pos() {
						preceded = true
						break
					}
				}
				if !preceded {
					pass.Report(call.Pos(), "publish() without a preceding WAL append or meta commit: a crash here acknowledges a mutation recovery cannot replay")
				}
			}
			return true
		})
	}
	return nil
}

// isSnapStore matches x.snap.Store(...) on an atomic pointer field.
func isSnapStore(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := calleeSelector(call)
	if !ok || sel.Sel.Name != "Store" {
		return false
	}
	recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || recv.Sel.Name != "snap" {
		return false
	}
	return isNamed(pass.TypeOf(recv), "sync/atomic", "Pointer")
}
