package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestFilterDirectives pins down the suppression contract: a well-formed
// //lint:ignore on the flagged line or the line directly above silences
// exactly the named analyzers, and a directive without a reason is itself
// reported under the pseudo-analyzer "lintdirective".
func TestFilterDirectives(t *testing.T) {
	src := `package p

func a() {} //lint:ignore epochorder the invariant holds because this fixture says so

//lint:ignore lockorder,errwrap reason covering two analyzers
func b() {}

func c() {}

//lint:ignore poolreset
func d() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Fset: fset, Syntax: []*ast.File{f}}

	pos := map[string]token.Pos{}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			pos[fd.Name.Name] = fd.Pos()
		}
	}

	diags := []Diagnostic{
		{Pos: pos["a"], Analyzer: "epochorder", Message: "same-line directive"},
		{Pos: pos["a"], Analyzer: "lockorder", Message: "directive names another analyzer"},
		{Pos: pos["b"], Analyzer: "lockorder", Message: "line-above directive, first name"},
		{Pos: pos["b"], Analyzer: "errwrap", Message: "line-above directive, second name"},
		{Pos: pos["c"], Analyzer: "epochorder", Message: "no directive near this line"},
	}
	out := Filter(pkg, diags)

	var kept, malformed []string
	for _, d := range out {
		if d.Analyzer == "lintdirective" {
			malformed = append(malformed, d.Message)
		} else {
			kept = append(kept, d.Message)
		}
	}
	if len(kept) != 2 || kept[0] != "directive names another analyzer" || kept[1] != "no directive near this line" {
		t.Errorf("surviving diagnostics = %q; want the non-matching and undirected ones only", kept)
	}
	if len(malformed) != 1 {
		t.Fatalf("got %d lintdirective findings, want 1 (the reason-less directive above d)", len(malformed))
	}
}
