// Package analysistest runs an analyzer over small fixture packages and
// checks its diagnostics against `// want "regexp"` comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract on the standard
// library alone.
//
// Fixtures live under <testdata>/src/<path>/*.go. Each fixture package is
// parsed and type-checked offline: standard-library imports resolve through
// the local build cache (`go list -export`), and fixture-to-fixture imports
// resolve against the packages loaded earlier in the same Run call, so a
// fixture can mirror a multi-package shape (e.g. a core package calling a
// pagefile mirror).
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/gauss-tree/gausstree/internal/analysis"
)

// Run applies the analyzer to every fixture package path (under
// testdata/src), in order, and reports mismatches between the produced
// diagnostics and the `// want` expectations as test errors. Suppression
// directives (//lint:ignore) are honored, so fixtures can also prove that
// a justified directive silences a finding.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	loaded := map[string]*types.Package{}
	for _, path := range paths {
		pkg, err := loadFixture(fset, testdata, path, loaded)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		loaded[path] = pkg.Types
		diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checkExpectations(t, pkg, analysis.Filter(pkg, diags))
	}
}

func loadFixture(fset *token.FileSet, testdata, path string, loaded map[string]*types.Package) (*analysis.Package, error) {
	dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &analysis.Package{PkgPath: path, Dir: dir, Fset: fset}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		full := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.GoFiles = append(pkg.GoFiles, full)
		pkg.Syntax = append(pkg.Syntax, f)
	}
	if len(pkg.Syntax) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			if fp, ok := loaded[p]; ok {
				return fp, nil
			}
			return importStd(fset, p)
		}),
	}
	tpkg, err := conf.Check(path, fset, pkg.Syntax, info)
	if err != nil {
		return nil, err
	}
	pkg.Types = tpkg
	pkg.TypesInfo = info
	return pkg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// --- standard-library imports via the build cache -------------------------

var (
	stdOnce    sync.Once
	stdErr     error
	stdExports map[string]string
	stdImp     = map[*token.FileSet]types.Importer{}
	stdImpMu   sync.Mutex
)

func importStd(fset *token.FileSet, path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	stdOnce.Do(func() { stdExports, stdErr = listStdExports() })
	if stdErr != nil {
		return nil, stdErr
	}
	stdImpMu.Lock()
	imp, ok := stdImp[fset]
	if !ok {
		imp = importer.ForCompiler(fset, "gc", func(p string) (io.ReadCloser, error) {
			f, ok := stdExports[p]
			if !ok {
				return nil, fmt.Errorf("analysistest: fixture imports %q, which is not in the preloaded stdlib set", p)
			}
			return os.Open(f)
		})
		stdImp[fset] = imp
	}
	stdImpMu.Unlock()
	return imp.Import(path)
}

// listStdExports builds the import-path -> export-data index for the
// stdlib packages fixtures may use (and their dependency closure).
func listStdExports() (map[string]string, error) {
	roots := []string{"sync", "sync/atomic", "context", "errors", "fmt", "time", "strings", "sort", "math"}
	cmd := exec.Command("go", append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, roots...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list std roots: %v\n%s", err, stderr.String())
	}
	out := map[string]string{}
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err != nil {
			return nil, err
		}
		if p.Export != "" {
			out[p.ImportPath] = p.Export
		}
	}
	return out, nil
}

// --- want-comment matching ------------------------------------------------

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

func checkExpectations(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	// line key "file:line" -> expectations on that line.
	wants := map[string][]*expectation{}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, raw := range splitQuoted(m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", key, raw, err)
						continue
					}
					wants[key] = append(wants[key], &expectation{re: re, raw: raw})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s: %s", key, d.Analyzer, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.raw)
			}
		}
	}
}

// splitQuoted extracts the Go-quoted string literals from a want clause:
// `"re one" "re two"`.
func splitQuoted(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			break
		}
		quote := s[0]
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' && quote == '"' {
				i++
				continue
			}
			if s[i] == quote {
				end = i
				break
			}
		}
		if end < 0 {
			break
		}
		if unq, err := strconv.Unquote(s[:end+1]); err == nil {
			out = append(out, unq)
		}
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}
