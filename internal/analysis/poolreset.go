package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// PoolReset enforces the sync.Pool hygiene the pooled traversal/collector
// state depends on (PR 5/6): before an object goes back into a pool, every
// field that can retain other heap objects (pointers, interfaces, funcs,
// maps, channels, and slices/structs of such) must be cleared on the same
// path — either field by field, via a whole-object Reset/Clear, or by
// zeroing the object. Scalar scratch buffers ([]float64, []byte) are
// deliberately exempt: keeping their capacity across Put is the point of
// pooling. The analyzer also flags any use of the object after the Put —
// the pool owns it from that moment.
var PoolReset = &Analyzer{
	Name: "poolreset",
	Doc:  "sync.Pool.Put must be preceded by clearing every reference-retaining field, and the object must not be used after Put",
	Run:  runPoolReset,
}

func runPoolReset(pass *Pass) error {
	for _, fn := range funcDecls(pass.Files) {
		checkPoolResetFunc(pass, fn.Body)
	}
	return nil
}

func checkPoolResetFunc(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPoolPut(pass, call) || len(call.Args) != 1 {
			return true
		}
		arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.ObjectOf(arg)
		if obj == nil {
			return true
		}
		checkResetBeforePut(pass, body, call, arg, obj)
		checkUseAfterPut(pass, body, call, arg, obj)
		return true
	})
}

func isPoolPut(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := calleeSelector(call)
	if !ok || sel.Sel.Name != "Put" {
		return false
	}
	return isNamed(pass.TypeOf(sel.X), "sync", "Pool")
}

func checkResetBeforePut(pass *Pass, body *ast.BlockStmt, put *ast.CallExpr, arg *ast.Ident, obj types.Object) {
	// Only pointer-to-struct pool objects carry per-field obligations.
	ptr, ok := types.Unalias(obj.Type()).(*types.Pointer)
	if !ok {
		return
	}
	st, ok := ptr.Elem().Underlying().(*types.Struct)
	if !ok {
		return
	}
	required := map[string]bool{}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if retainsReferences(f.Type()) {
			required[f.Name()] = false
		}
	}
	if len(required) == 0 {
		return
	}

	wholeCleared := false
	ast.Inspect(body, func(n ast.Node) bool {
		if wholeCleared || n == nil || n.Pos() >= put.Pos() {
			return !wholeCleared
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// x.Reset(...) / x.Clear(...) clears the whole object;
			// x.f.Reset(...) / x.f.Clear(...) clears field f.
			sel, ok := calleeSelector(n)
			if !ok || (sel.Sel.Name != "Reset" && sel.Sel.Name != "Clear") {
				return true
			}
			switch recv := ast.Unparen(sel.X).(type) {
			case *ast.Ident:
				if pass.ObjectOf(recv) == obj {
					wholeCleared = true
				}
			case *ast.SelectorExpr:
				if base, ok := ast.Unparen(recv.X).(*ast.Ident); ok && pass.ObjectOf(base) == obj {
					required[recv.Sel.Name] = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				switch lhs := ast.Unparen(lhs).(type) {
				case *ast.StarExpr: // *x = T{}
					if id, ok := ast.Unparen(lhs.X).(*ast.Ident); ok && pass.ObjectOf(id) == obj {
						wholeCleared = true
					}
				case *ast.SelectorExpr: // x.f = ...
					if base, ok := ast.Unparen(lhs.X).(*ast.Ident); ok && pass.ObjectOf(base) == obj {
						required[lhs.Sel.Name] = true
					}
				}
			}
		}
		return true
	})
	if wholeCleared {
		return
	}
	var missing []string
	for f, cleared := range required {
		if !cleared {
			missing = append(missing, f)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(put.Pos(), "sync.Pool.Put(%s) without clearing reference-retaining field(s) %s: pooled objects must not keep queries or trees alive",
			arg.Name, strings.Join(missing, ", "))
	}
}

func checkUseAfterPut(pass *Pass, body *ast.BlockStmt, put *ast.CallExpr, arg *ast.Ident, obj types.Object) {
	var after token.Pos = put.End()
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() <= after {
			return true
		}
		if pass.TypesInfo.Uses[id] == obj {
			pass.Reportf(id.Pos(), "use of %s after sync.Pool.Put: the pool owns the object once it is returned", id.Name)
		}
		return true
	})
}
