// Package eval is the experiment harness that regenerates the paper's
// evaluation (§6): the effectiveness comparison of Figure 6 (precision and
// recall of conventional nearest-neighbor search on means vs. k-MLIQ on
// probabilistic feature vectors) and the efficiency comparison of Figure 7
// (page accesses, CPU time and overall time of the Gauss-tree, the X-tree
// box-approximation baseline, and the sequential scan, for 1-MLIQ and two
// TIQ thresholds on both data sets).
//
// Metric conventions (fixed in DESIGN.md §5): every query has exactly one
// correct answer (its generating object); recall@x is the fraction of
// queries whose correct object appears in the top 3·x results; precision@x
// is recall@x divided by x, which equals recall at x1 — matching the paper's
// "percentage of queries that retrieved the correct object" — and decays
// with oversized result sets as in the paper's curves. "Page accesses" are
// logical page requests against the shared buffer manager; "overall time"
// is measured CPU time plus modeled I/O time (seek + transfer, cold cache
// per query) under pagefile's disk cost model.
package eval

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"github.com/gauss-tree/gausstree/internal/core"
	"github.com/gauss-tree/gausstree/internal/dataset"
	"github.com/gauss-tree/gausstree/internal/gaussian"
	"github.com/gauss-tree/gausstree/internal/pagefile"
	"github.com/gauss-tree/gausstree/internal/query"
	"github.com/gauss-tree/gausstree/internal/scan"
	"github.com/gauss-tree/gausstree/internal/vafile"
	"github.com/gauss-tree/gausstree/internal/xtree"
)

// Setup configures engine construction.
type Setup struct {
	// PageSize in bytes (default 8192).
	PageSize int
	// CacheBytes of buffer cache per engine (default 50 MB, the paper's).
	CacheBytes int
	// Combiner for all probability computations.
	Combiner gaussian.Combiner
	// Split objective for the Gauss-tree.
	Split core.SplitObjective
	// InsertBuild constructs the Gauss-tree by repeated insertion instead
	// of bulk loading (slower, ~60%% leaf fill; kept for ablations).
	InsertBuild bool
	// LeafFormat selects the Gauss-tree's on-page leaf encoding (the
	// comparison engines are unaffected). Default: core.LeafExact.
	LeafFormat core.LeafFormat
}

func (s *Setup) fillDefaults() {
	if s.PageSize <= 0 {
		s.PageSize = pagefile.DefaultPageSize
	}
	if s.CacheBytes <= 0 {
		s.CacheBytes = 50 << 20
	}
}

// NamedEngine pairs one competitor with its report label and its page
// manager (each engine owns a manager so page accesses stay attributable).
type NamedEngine struct {
	Label  string
	Engine query.Engine
	Mgr    *pagefile.Manager
}

// Engines bundles the four competitors built over the same data set, each
// on its own page manager so page accesses are attributable. The harness
// queries them exclusively through the query.Engine interface.
type Engines struct {
	Tree    *core.Tree
	TreeMgr *pagefile.Manager
	Scan    *scan.File
	ScanMgr *pagefile.Manager
	X       *xtree.Tree
	XMgr    *pagefile.Manager
	VA      *vafile.File
	VAData  *scan.File
	VAMgr   *pagefile.Manager

	Combiner gaussian.Combiner
}

// All returns the competitors in report order: the sequential scan first
// (every relative metric divides by it), then the index structures.
func (e *Engines) All() []NamedEngine {
	return []NamedEngine{
		{"Seq. Scan", e.Scan, e.ScanMgr},
		{"X-Tree", e.X, e.XMgr},
		{"VA-File", e.VA, e.VAMgr},
		{"Gauss-Tree", e.Tree, e.TreeMgr},
	}
}

// newManager creates one engine's page manager.
func (s Setup) newManager() (*pagefile.Manager, error) {
	return pagefile.NewManager(pagefile.NewMemBackend(s.PageSize), s.PageSize, pagefile.WithCacheBytes(s.CacheBytes))
}

// Build constructs all four engines for a data set.
func Build(ds *dataset.Dataset, s Setup) (*Engines, error) {
	s.fillDefaults()
	e := &Engines{Combiner: s.Combiner}

	var err error
	if e.TreeMgr, err = s.newManager(); err != nil {
		return nil, err
	}
	if e.Tree, err = core.New(e.TreeMgr, ds.Dim, core.Config{Combiner: s.Combiner, Split: s.Split, LeafFormat: s.LeafFormat}); err != nil {
		return nil, err
	}
	if s.InsertBuild {
		_, err = e.Tree.InsertAll(ds.Vectors)
	} else {
		err = e.Tree.BulkLoad(ds.Vectors)
	}
	if err != nil {
		return nil, err
	}

	if e.ScanMgr, err = s.newManager(); err != nil {
		return nil, err
	}
	if e.Scan, err = scan.Create(e.ScanMgr, ds.Dim, s.Combiner); err != nil {
		return nil, err
	}
	if err = e.Scan.AppendAll(ds.Vectors); err != nil {
		return nil, err
	}

	if e.XMgr, err = s.newManager(); err != nil {
		return nil, err
	}
	if e.X, err = xtree.New(e.XMgr, ds.Dim, xtree.Config{Combiner: s.Combiner}); err != nil {
		return nil, err
	}
	if err = e.X.InsertAll(ds.Vectors); err != nil {
		return nil, err
	}

	// The VA-file filters a sequential data file; both live on one manager
	// so its filter and refinement accesses are accounted together.
	if e.VAMgr, err = s.newManager(); err != nil {
		return nil, err
	}
	if e.VAData, err = scan.Create(e.VAMgr, ds.Dim, s.Combiner); err != nil {
		return nil, err
	}
	if err = e.VAData.AppendAll(ds.Vectors); err != nil {
		return nil, err
	}
	if e.VA, err = vafile.Build(e.VAMgr, e.VAData, s.Combiner); err != nil {
		return nil, err
	}
	return e, nil
}

// Fig6Row is one multiplier row of the Figure 6 reproduction.
type Fig6Row struct {
	Multiplier    int
	RecallNN      float64
	PrecisionNN   float64
	RecallMLIQ    float64
	PrecisionMLIQ float64
}

// Fig6Report is the Figure 6 reproduction for one data set.
type Fig6Report struct {
	Dataset string
	Queries int
	Rows    []Fig6Row
}

// Figure6 reproduces the precision/recall experiment: 3·x-NN on conventional
// feature vectors (mean values, Euclidean distance) against 3·x-MLIQ on pfv,
// for the given result-set multipliers (the paper uses x1..x9).
func Figure6(e *Engines, ds *dataset.Dataset, queries []dataset.Query, multipliers []int) (*Fig6Report, error) {
	maxMult := 0
	for _, m := range multipliers {
		if m > maxMult {
			maxMult = m
		}
	}
	if maxMult == 0 {
		return nil, fmt.Errorf("eval: no multipliers")
	}
	kMax := 3 * maxMult

	// rankOf returns the 1-based position of the truth in the result list,
	// or 0 when absent.
	rankOf := func(rs []query.Result, truth uint64) int {
		for i, r := range rs {
			if r.Vector.ID == truth {
				return i + 1
			}
		}
		return 0
	}

	ctx := context.Background()
	nnHits := make([]int, kMax+1)   // nnHits[r]: queries whose truth ranked r
	mliqHits := make([]int, kMax+1) // same for the MLIQ on the Gauss-tree
	for _, q := range queries {
		nn, err := e.Scan.NearestNeighbors(q.Vector, kMax)
		if err != nil {
			return nil, err
		}
		if r := rankOf(nn, q.TruthID); r > 0 {
			nnHits[r]++
		}
		ml, _, err := e.Tree.KMLIQRanked(ctx, q.Vector, kMax)
		if err != nil {
			return nil, err
		}
		if r := rankOf(ml, q.TruthID); r > 0 {
			mliqHits[r]++
		}
	}
	cum := func(hits []int, k int) float64 {
		total := 0
		for r := 1; r <= k && r < len(hits); r++ {
			total += hits[r]
		}
		return float64(total) / float64(len(queries))
	}

	rep := &Fig6Report{Dataset: ds.Name, Queries: len(queries)}
	for _, m := range multipliers {
		recNN := cum(nnHits, 3*m)
		recML := cum(mliqHits, 3*m)
		rep.Rows = append(rep.Rows, Fig6Row{
			Multiplier:    m,
			RecallNN:      recNN,
			PrecisionNN:   recNN / float64(m),
			RecallMLIQ:    recML,
			PrecisionMLIQ: recML / float64(m),
		})
	}
	return rep, nil
}

// Format renders the report as an aligned text table.
func (r *Fig6Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — %s (%d queries): precision/recall, 3x-NN on means vs 3x-MLIQ on pfv\n", r.Dataset, r.Queries)
	fmt.Fprintf(&b, "%-5s %12s %12s %12s %12s\n", "x", "NN recall", "NN prec", "MLIQ recall", "MLIQ prec")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "x%-4d %11.1f%% %11.1f%% %11.1f%% %11.1f%%\n",
			row.Multiplier, 100*row.RecallNN, 100*row.PrecisionNN,
			100*row.RecallMLIQ, 100*row.PrecisionMLIQ)
	}
	return b.String()
}

// Fig7Cell aggregates one engine × query-type measurement.
type Fig7Cell struct {
	Engine     string
	QueryType  string
	Pages      float64       // mean logical page accesses per query
	CPU        time.Duration // mean CPU time per query
	IO         time.Duration // mean modeled I/O time per query (cold cache)
	Overall    time.Duration // CPU + IO
	AllocsPerQ float64       // mean heap allocations per query
	BytesPerQ  float64       // mean heap bytes allocated per query
	PagesPct   float64       // relative to the sequential scan, in percent
	CPUPct     float64
	OverallPct float64
}

// Fig7Report is the Figure 7 reproduction for one data set.
type Fig7Report struct {
	Dataset string
	Queries int
	// LeafFormat names the Gauss-tree's on-page leaf encoding ("exact",
	// "float32", "grid8"); the comparison engines do not quantize.
	LeafFormat string
	Cells      []Fig7Cell
}

// queryKind identifies one of the three measured query types.
type queryKind struct {
	name   string
	thresh float64 // <0 means 1-MLIQ
}

// runKind dispatches one measured query kind on any engine: thresh < 0 is
// the ranked 1-MLIQ (the paper's Figure 7 measures the plain MLIQ of §5.2.1,
// which ranks without computing probability values; KMLIQ with probability
// refinement is measured separately by the ablation benchmarks), otherwise a
// TIQ at the given threshold.
func runKind(ctx context.Context, eng query.Engine, q dataset.Query, thresh float64) (query.Stats, error) {
	if thresh < 0 {
		_, st, err := eng.KMLIQRanked(ctx, q.Vector, 1)
		return st, err
	}
	_, st, err := eng.TIQ(ctx, q.Vector, thresh, 0)
	return st, err
}

// Figure7 reproduces the efficiency experiment — 1-MLIQ, TIQ(Pθ=0.8) and
// TIQ(Pθ=0.2) — on every engine of the bundle: the sequential scan, the
// X-tree with 95% hyper-rectangle approximations, the VA-file and the
// Gauss-tree, all driven through the uniform query.Engine interface. The
// buffer cache is cold-started once per experiment so that page counts are
// per-query comparable.
func Figure7(e *Engines, ds *dataset.Dataset, queries []dataset.Query) (*Fig7Report, error) {
	kinds := []queryKind{
		{"1-MLIQ", -1},
		{"TIQ(P=0.8)", 0.8},
		{"TIQ(P=0.2)", 0.2},
	}
	ctx := context.Background()
	rep := &Fig7Report{Dataset: ds.Name, Queries: len(queries), LeafFormat: e.Tree.LeafFormat().String()}
	scanBase := map[string]Fig7Cell{}
	for _, eng := range e.All() {
		for _, kind := range kinds {
			// Paper regime: the buffer cache is cold-started once per
			// experiment, then shared across the experiment's queries.
			eng.Mgr.ResetStats()
			eng.Mgr.DropCache()
			var cpu time.Duration
			var io time.Duration
			var pages uint64
			var mem0, mem1 runtime.MemStats
			runtime.ReadMemStats(&mem0)
			for _, q := range queries {
				before := eng.Mgr.Stats()
				start := time.Now()
				st, err := runKind(ctx, eng.Engine, q, kind.thresh)
				if err != nil {
					return nil, fmt.Errorf("%s %s: %w", eng.Label, kind.name, err)
				}
				cpu += time.Since(start)
				pages += st.PageAccesses
				io += eng.Mgr.CostModel().IOTime(eng.Mgr.Stats().Sub(before))
			}
			runtime.ReadMemStats(&mem1)
			n := time.Duration(len(queries))
			cell := Fig7Cell{
				Engine:     eng.Label,
				QueryType:  kind.name,
				Pages:      float64(pages) / float64(len(queries)),
				CPU:        cpu / n,
				IO:         io / n,
				Overall:    (cpu + io) / n,
				AllocsPerQ: float64(mem1.Mallocs-mem0.Mallocs) / float64(len(queries)),
				BytesPerQ:  float64(mem1.TotalAlloc-mem0.TotalAlloc) / float64(len(queries)),
			}
			if eng.Label == "Seq. Scan" {
				scanBase[kind.name] = cell
			}
			base := scanBase[kind.name]
			if base.Pages > 0 {
				cell.PagesPct = 100 * cell.Pages / base.Pages
				cell.CPUPct = 100 * float64(cell.CPU) / float64(base.CPU)
				cell.OverallPct = 100 * float64(cell.Overall) / float64(base.Overall)
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}
	return rep, nil
}

// Format renders the report as an aligned text table.
func (r *Fig7Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — %s (%d queries): page accesses / CPU / overall time, %% of sequential scan\n",
		r.Dataset, r.Queries)
	fmt.Fprintf(&b, "%-12s %-12s %10s %8s %12s %8s %12s %8s %10s\n",
		"engine", "query", "pages", "pct", "cpu", "pct", "overall", "pct", "allocs/q")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-12s %-12s %10.1f %7.1f%% %12s %7.1f%% %12s %7.1f%% %10.0f\n",
			c.Engine, c.QueryType, c.Pages, c.PagesPct,
			c.CPU.Round(time.Microsecond), c.CPUPct,
			c.Overall.Round(time.Microsecond), c.OverallPct, c.AllocsPerQ)
	}
	return b.String()
}

// SpeedupOver returns base/val as a factor (e.g. page-access speedup of the
// Gauss-tree over the scan); 0 when the cell is missing.
func (r *Fig7Report) SpeedupOver(engine, queryType string) float64 {
	var eng, base *Fig7Cell
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.QueryType != queryType {
			continue
		}
		switch c.Engine {
		case engine:
			eng = c
		case "Seq. Scan":
			base = c
		}
	}
	if eng == nil || base == nil || eng.Pages == 0 {
		return 0
	}
	return base.Pages / eng.Pages
}
