package eval

import (
	"strings"
	"testing"

	"github.com/gauss-tree/gausstree/internal/dataset"
)

// smallWorld builds a reduced data-set-2-style world for fast tests.
func smallWorld(t *testing.T, n, queries int) (*Engines, *dataset.Dataset, []dataset.Query) {
	t.Helper()
	p := dataset.DefaultSyntheticParams()
	p.N = n
	ds, err := dataset.Synthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := dataset.MakeQueries(ds, dataset.QueryParams{
		Count: queries, Sigma: p.Sigma, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Build(ds, Setup{PageSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	return e, ds, qs
}

func TestBuildEnginesConsistent(t *testing.T) {
	e, ds, _ := smallWorld(t, 1500, 1)
	if e.Tree.Len() != len(ds.Vectors) || e.Scan.Len() != len(ds.Vectors) ||
		e.X.Len() != len(ds.Vectors) || e.VA.Len() != len(ds.Vectors) {
		t.Errorf("engine sizes: tree=%d scan=%d x=%d va=%d want %d",
			e.Tree.Len(), e.Scan.Len(), e.X.Len(), e.VA.Len(), len(ds.Vectors))
	}
	if err := e.Tree.CheckInvariants(); err != nil {
		t.Errorf("tree: %v", err)
	}
	if err := e.X.CheckInvariants(); err != nil {
		t.Errorf("xtree: %v", err)
	}
	if got := len(e.All()); got != 4 {
		t.Errorf("All() returned %d engines, want 4", got)
	}
	if e.All()[0].Label != "Seq. Scan" {
		t.Errorf("baseline engine must come first, got %q", e.All()[0].Label)
	}
}

func TestFigure6ShapeAndBounds(t *testing.T) {
	e, ds, qs := smallWorld(t, 1500, 40)
	rep, err := Figure6(e, ds, qs, []int{1, 3, 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	prevNN := 0.0
	for i, row := range rep.Rows {
		for _, v := range []float64{row.RecallNN, row.PrecisionNN, row.RecallMLIQ, row.PrecisionMLIQ} {
			if v < 0 || v > 1 {
				t.Errorf("row %d: metric out of range: %+v", i, row)
			}
		}
		// Recall grows (weakly) with the result size; precision = recall/x.
		if row.RecallNN+1e-12 < prevNN {
			t.Errorf("NN recall decreased: %+v", rep.Rows)
		}
		prevNN = row.RecallNN
		if diff := row.PrecisionNN - row.RecallNN/float64(row.Multiplier); diff > 1e-12 || diff < -1e-12 {
			t.Errorf("precision definition violated: %+v", row)
		}
	}
	// At x1 precision equals recall by construction.
	if rep.Rows[0].PrecisionNN != rep.Rows[0].RecallNN {
		t.Error("x1 precision must equal recall")
	}
	// The paper's core claim: the probabilistic model identifies far better
	// than plain NN on means.
	if rep.Rows[0].RecallMLIQ <= rep.Rows[0].RecallNN {
		t.Errorf("MLIQ recall %.2f should beat NN recall %.2f",
			rep.Rows[0].RecallMLIQ, rep.Rows[0].RecallNN)
	}
	out := rep.Format()
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "x1") {
		t.Errorf("Format output malformed:\n%s", out)
	}
}

func TestFigure7ShapeAndBounds(t *testing.T) {
	e, ds, qs := smallWorld(t, 2000, 10)
	rep, err := Figure7(e, ds, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 12 { // 4 engines × 3 query types
		t.Fatalf("cells = %d", len(rep.Cells))
	}
	var scanMLIQ, treeMLIQ *Fig7Cell
	for i := range rep.Cells {
		c := &rep.Cells[i]
		if c.Pages <= 0 {
			t.Errorf("cell %s/%s: zero pages", c.Engine, c.QueryType)
		}
		if c.Engine == "Seq. Scan" && c.QueryType == "1-MLIQ" {
			scanMLIQ = c
		}
		if c.Engine == "Gauss-Tree" && c.QueryType == "1-MLIQ" {
			treeMLIQ = c
		}
	}
	if scanMLIQ == nil || treeMLIQ == nil {
		t.Fatal("missing cells")
	}
	// Scan page count is exactly the file size for one scan.
	if int(scanMLIQ.Pages) != len(e.Scan.Pages()) {
		t.Errorf("scan MLIQ pages = %v, file has %d", scanMLIQ.Pages, len(e.Scan.Pages()))
	}
	// The headline efficiency claim, in shape: fewer pages for the tree.
	if treeMLIQ.Pages >= scanMLIQ.Pages {
		t.Errorf("Gauss-tree MLIQ pages %v should undercut scan %v", treeMLIQ.Pages, scanMLIQ.Pages)
	}
	if sp := rep.SpeedupOver("Gauss-Tree", "1-MLIQ"); sp <= 1 {
		t.Errorf("speedup = %v, want > 1", sp)
	}
	if sp := rep.SpeedupOver("No-Such", "1-MLIQ"); sp != 0 {
		t.Errorf("missing engine speedup = %v, want 0", sp)
	}
	out := rep.Format()
	if !strings.Contains(out, "Gauss-Tree") || !strings.Contains(out, "TIQ(P=0.8)") {
		t.Errorf("Format output malformed:\n%s", out)
	}
}

func TestFigure6NoMultipliers(t *testing.T) {
	e, ds, qs := smallWorld(t, 500, 2)
	if _, err := Figure6(e, ds, qs, nil); err == nil {
		t.Error("empty multipliers should fail")
	}
}
