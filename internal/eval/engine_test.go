package eval

import (
	"context"
	"testing"

	"github.com/gauss-tree/gausstree/internal/pfv"
	"github.com/gauss-tree/gausstree/internal/query"
)

// TestEngineConformance drives all four backends through the query.Engine
// interface on one shared data set and asserts they produce identical
// answers. Queries are exact clones of stored vectors, so the generating
// object dominates and even the X-tree's box filter (which in general
// permits false dismissals) must locate it.
func TestEngineConformance(t *testing.T) {
	e, ds, _ := smallWorld(t, 1200, 1)
	ctx := context.Background()
	engines := e.All()

	sortedIDs := func(rs []query.Result) []uint64 {
		return query.IDs(rs)
	}

	for trial := 0; trial < 15; trial++ {
		src := ds.Vectors[(trial*97)%len(ds.Vectors)]
		q := src.Clone()
		q.ID = 0

		// Top-1 identification must agree across all four engines.
		for _, eng := range engines {
			res, stats, err := eng.Engine.KMLIQRanked(ctx, q, 1)
			if err != nil {
				t.Fatalf("%s ranked: %v", eng.Engine.Name(), err)
			}
			if len(res) != 1 || res[0].Vector.ID != src.ID {
				t.Errorf("trial %d %s: top-1 = %v, want %d", trial, eng.Engine.Name(), sortedIDs(res), src.ID)
			}
			if stats.PageAccesses == 0 {
				t.Errorf("trial %d %s: zero page accesses reported", trial, eng.Engine.Name())
			}
		}

		// The exact engines (scan, VA-file, Gauss-tree — everything but the
		// X-tree approximation) must return identical sorted k=5 rankings.
		var want []uint64
		for _, eng := range engines {
			if eng.Engine.Name() == "x-tree" {
				continue
			}
			res, _, err := eng.Engine.KMLIQRanked(ctx, q, 5)
			if err != nil {
				t.Fatalf("%s ranked k=5: %v", eng.Engine.Name(), err)
			}
			ids := sortedIDs(res)
			if want == nil {
				want = ids
				continue
			}
			if len(ids) != len(want) {
				t.Fatalf("trial %d %s: %d results, want %d", trial, eng.Engine.Name(), len(ids), len(want))
			}
			for i := range want {
				if ids[i] != want[i] {
					t.Errorf("trial %d %s: rank %d = %d, baseline %d",
						trial, eng.Engine.Name(), i, ids[i], want[i])
				}
			}
		}
	}
}

// TestEngineEmptyResultsNonNil asserts the cross-engine nil-vs-empty
// contract: a query matching nothing returns []Result{} (never nil) from
// every backend, so the serving layer's JSON encoder emits [] instead of
// null regardless of which engine answered. A maximally uncertain query
// spreads the posterior over the whole database, so no object comes close
// to a 0.999 threshold on any engine.
func TestEngineEmptyResultsNonNil(t *testing.T) {
	e, ds, _ := smallWorld(t, 900, 1)
	ctx := context.Background()
	sigma := make([]float64, ds.Dim)
	for i := range sigma {
		sigma[i] = 50
	}
	q, err := pfv.New(0, append([]float64(nil), ds.Vectors[0].Mean...), sigma)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range e.All() {
		res, _, err := eng.Engine.TIQ(ctx, q, 0.999, 0)
		if err != nil {
			t.Fatalf("%s TIQ: %v", eng.Engine.Name(), err)
		}
		if len(res) != 0 {
			t.Fatalf("%s TIQ: %d results, expected an empty answer set", eng.Engine.Name(), len(res))
		}
		if res == nil {
			t.Errorf("%s TIQ: nil results, want []Result{}", eng.Engine.Name())
		}
	}
}

// TestEngineStatsNonZero asserts every engine × query type reports page
// accesses on a non-trivial data set — the acceptance bar for the per-query
// stats plumbing.
func TestEngineStatsNonZero(t *testing.T) {
	e, ds, _ := smallWorld(t, 800, 1)
	ctx := context.Background()
	q := ds.Vectors[17].Clone()
	q.ID = 0
	for _, eng := range e.All() {
		name := eng.Engine.Name()
		if _, st, err := eng.Engine.KMLIQ(ctx, q, 3, 0); err != nil || st.PageAccesses == 0 {
			t.Errorf("%s KMLIQ: stats=%v err=%v", name, st, err)
		}
		if _, st, err := eng.Engine.KMLIQRanked(ctx, q, 3); err != nil || st.PageAccesses == 0 {
			t.Errorf("%s KMLIQRanked: stats=%v err=%v", name, st, err)
		}
		if _, st, err := eng.Engine.TIQ(ctx, q, 0.5, 0); err != nil || st.PageAccesses == 0 {
			t.Errorf("%s TIQ: stats=%v err=%v", name, st, err)
		}
	}
}

// TestEngineCancellation proves a cancelled context aborts every engine
// promptly with ctx.Err().
func TestEngineCancellation(t *testing.T) {
	e, ds, _ := smallWorld(t, 800, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the very first page read must not happen
	q := ds.Vectors[3].Clone()
	q.ID = 0
	for _, eng := range e.All() {
		name := eng.Engine.Name()
		if _, _, err := eng.Engine.KMLIQ(ctx, q, 3, 0); err != context.Canceled {
			t.Errorf("%s KMLIQ on cancelled ctx: err=%v, want context.Canceled", name, err)
		}
		if _, _, err := eng.Engine.KMLIQRanked(ctx, q, 3); err != context.Canceled {
			t.Errorf("%s KMLIQRanked on cancelled ctx: err=%v, want context.Canceled", name, err)
		}
		if _, _, err := eng.Engine.TIQ(ctx, q, 0.5, 0); err != context.Canceled {
			t.Errorf("%s TIQ on cancelled ctx: err=%v, want context.Canceled", name, err)
		}
	}
}

// TestBatchExecutorAgainstSequential runs a query batch through the worker
// pool and verifies the responses equal individually executed queries.
func TestBatchExecutorAgainstSequential(t *testing.T) {
	e, ds, qs := smallWorld(t, 1200, 24)
	ctx := context.Background()
	reqs := make([]query.Request, 0, 2*len(qs))
	for i, q := range qs {
		reqs = append(reqs, query.Request{Kind: query.KindKMLIQRanked, Query: q.Vector, K: 1 + i%4})
		reqs = append(reqs, query.Request{Kind: query.KindTIQ, Query: q.Vector, PTheta: 0.2})
	}
	_ = ds
	ex := query.NewBatchExecutor(e.Tree, 4)
	resps := ex.Execute(ctx, reqs)
	if len(resps) != len(reqs) {
		t.Fatalf("got %d responses for %d requests", len(resps), len(reqs))
	}
	for i, resp := range resps {
		if resp.Err != nil {
			t.Fatalf("request %d: %v", i, resp.Err)
		}
		want := ex.Do(ctx, reqs[i])
		if len(resp.Results) != len(want.Results) {
			t.Fatalf("request %d: batch %d results, sequential %d", i, len(resp.Results), len(want.Results))
		}
		for j := range want.Results {
			if resp.Results[j].Vector.ID != want.Results[j].Vector.ID {
				t.Errorf("request %d rank %d: batch %d vs sequential %d",
					i, j, resp.Results[j].Vector.ID, want.Results[j].Vector.ID)
			}
		}
		if resp.Stats.PageAccesses == 0 {
			t.Errorf("request %d: zero page accesses", i)
		}
	}
}

// TestBatchExecutorCancellation verifies that cancelling the batch context
// marks unexecuted requests with the context error.
func TestBatchExecutorCancellation(t *testing.T) {
	e, _, qs := smallWorld(t, 800, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := make([]query.Request, 0, len(qs))
	for _, q := range qs {
		reqs = append(reqs, query.Request{Kind: query.KindKMLIQRanked, Query: q.Vector, K: 1})
	}
	for i, resp := range query.NewBatchExecutor(e.Tree, 2).Execute(ctx, reqs) {
		if resp.Err != context.Canceled {
			t.Errorf("request %d: err=%v, want context.Canceled", i, resp.Err)
		}
	}
}
