// Package buildinfo exposes the identity of the running binary — module
// version, VCS revision and Go toolchain — read once from the build info
// the Go linker embeds. gaussd stamps it onto /v1/stats and the
// gaussd_build_info metric, and gaussbench onto its -json rows, so every
// recorded measurement says what produced it.
package buildinfo

import (
	"runtime/debug"
	"sync"
)

// Info identifies one build of a binary in this module.
type Info struct {
	// Version is the main module version; "(devel)" for a source build.
	Version string `json:"version"`
	// Revision is the VCS revision the binary was built from, or "unknown"
	// when the build carried no VCS stamp (e.g. go test binaries).
	Revision string `json:"revision"`
	// Modified reports whether the working tree had uncommitted changes.
	Modified bool `json:"modified"`
	// GoVersion is the Go toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

var (
	once   sync.Once
	cached Info
)

// Get returns the running binary's build identity. The first call reads
// runtime/debug.ReadBuildInfo; subsequent calls return the cached value.
func Get() Info {
	once.Do(func() {
		cached = Info{Version: "(devel)", Revision: "unknown"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		cached.GoVersion = bi.GoVersion
		if bi.Main.Version != "" {
			cached.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				cached.Revision = s.Value
			case "vcs.modified":
				cached.Modified = s.Value == "true"
			}
		}
	})
	return cached
}
