// Package scan implements the paper's baseline query processor: identification
// queries on top of a sequential scan over an unordered paged file of
// probabilistic feature vectors (§4). The k-MLIQ needs a single scan that
// simultaneously maintains the k best candidates and the Bayes denominator;
// the TIQ needs two scans — one to establish the total probability mass,
// one to report every object above the threshold.
//
// The file lives on the same pagefile substrate as the index structures, so
// the page-access and seek counts of all competitors are comparable, and it
// implements the same query.Engine interface, so the evaluation harness
// drives it interchangeably with the index structures.
package scan

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"github.com/gauss-tree/gausstree/internal/gaussian"
	"github.com/gauss-tree/gausstree/internal/pagefile"
	"github.com/gauss-tree/gausstree/internal/pfv"
	"github.com/gauss-tree/gausstree/internal/pqueue"
	"github.com/gauss-tree/gausstree/internal/query"
)

// pageHeaderSize is the per-page header: a little-endian uint16 entry count.
const pageHeaderSize = 2

// File is a sequential file of fixed-dimension probabilistic feature
// vectors, packed into pages. It is safe for concurrent readers; Append
// requires external exclusion.
type File struct {
	mgr      *pagefile.Manager
	dim      int
	perPage  int
	combiner gaussian.Combiner
	pages    []pagefile.PageID
	count    int
	// lastUsed is the entry count of the final page, so appends do not
	// re-read it.
	lastUsed int
	// decoded caches parsed pages, guarded by decMu so parallel queries can
	// share it. Logical page accesses are still charged against the
	// manager; the cache only avoids re-parsing bytes, keeping CPU-time
	// comparisons against the (equally caching) index structures fair.
	decMu   sync.RWMutex
	decoded map[pagefile.PageID][]pfv.Vector
}

var _ query.Engine = (*File)(nil)

// Create initializes an empty sequential file for vectors of the given
// dimension on the provided page manager. The combiner is the σ-combination
// rule used by this file's identification queries.
func Create(mgr *pagefile.Manager, dim int, combiner gaussian.Combiner) (*File, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("scan: invalid dimension %d", dim)
	}
	perPage := (mgr.PageSize() - pageHeaderSize) / pfv.EncodedSize(dim)
	if perPage < 1 {
		return nil, fmt.Errorf("scan: page size %d too small for dimension %d", mgr.PageSize(), dim)
	}
	return &File{
		mgr:      mgr,
		dim:      dim,
		perPage:  perPage,
		combiner: combiner,
		decoded:  make(map[pagefile.PageID][]pfv.Vector),
	}, nil
}

// Open reattaches a file from its metadata (dimension, page list and entry
// count), e.g. after reopening a persistent page file.
func Open(mgr *pagefile.Manager, dim int, combiner gaussian.Combiner, pages []pagefile.PageID, count int) (*File, error) {
	f, err := Create(mgr, dim, combiner)
	if err != nil {
		return nil, err
	}
	f.pages = append([]pagefile.PageID(nil), pages...)
	f.count = count
	f.lastUsed = count - (len(pages)-1)*f.perPage
	if len(pages) == 0 {
		f.lastUsed = 0
	}
	return f, nil
}

// Name identifies the sequential scan in engine-agnostic reports.
func (f *File) Name() string { return "seq-scan" }

// Dim returns the dimensionality of the stored vectors.
func (f *File) Dim() int { return f.dim }

// Len returns the number of stored vectors.
func (f *File) Len() int { return f.count }

// Combiner returns the σ-combination rule of this file's queries.
func (f *File) Combiner() gaussian.Combiner { return f.combiner }

// Pages returns the file's data pages in scan order (metadata for Open).
func (f *File) Pages() []pagefile.PageID {
	return append([]pagefile.PageID(nil), f.pages...)
}

// PerPage returns the number of vectors stored per page.
func (f *File) PerPage() int { return f.perPage }

// Append adds a vector to the end of the file.
func (f *File) Append(v pfv.Vector) error {
	if v.Dim() != f.dim {
		return fmt.Errorf("scan: vector dimension %d, file dimension %d", v.Dim(), f.dim)
	}
	if len(f.pages) == 0 || f.lastUsed >= f.perPage {
		id, err := f.mgr.Allocate()
		if err != nil {
			return err
		}
		if err := f.mgr.Write(id, encodePage(nil, f.dim)); err != nil {
			return err
		}
		f.pages = append(f.pages, id)
		f.lastUsed = 0
	}
	last := f.pages[len(f.pages)-1]
	vs, err := f.readPage(last, nil)
	if err != nil {
		return err
	}
	vs = append(vs[:len(vs):len(vs)], v)
	if err := f.mgr.Write(last, encodePage(vs, f.dim)); err != nil {
		return err
	}
	f.decMu.Lock()
	f.decoded[last] = vs
	f.decMu.Unlock()
	f.lastUsed = len(vs)
	f.count++
	return nil
}

// readPage returns the decoded vectors of one page, charging the logical
// page access (to the per-query counter too, when non-nil) and reusing the
// decoded cache.
func (f *File) readPage(id pagefile.PageID, c *pagefile.Counter) ([]pfv.Vector, error) {
	page, err := f.mgr.ReadCounted(id, c)
	if err != nil {
		return nil, err
	}
	f.decMu.RLock()
	vs, ok := f.decoded[id]
	f.decMu.RUnlock()
	if ok {
		return vs, nil
	}
	vs, err = decodePage(page, f.dim)
	if err != nil {
		return nil, err
	}
	f.decMu.Lock()
	f.decoded[id] = vs
	f.decMu.Unlock()
	return vs, nil
}

// AppendAll adds a batch of vectors.
func (f *File) AppendAll(vs []pfv.Vector) error {
	for _, v := range vs {
		if err := f.Append(v); err != nil {
			return err
		}
	}
	return nil
}

// ForEach scans the file in storage order, invoking fn for every vector.
// Iteration stops early if fn returns an error, which is propagated.
func (f *File) ForEach(fn func(pfv.Vector) error) error {
	return f.forEach(context.Background(), nil, fn)
}

// forEach is ForEach with context checks (once per page) and per-query
// page-access attribution.
func (f *File) forEach(ctx context.Context, c *pagefile.Counter, fn func(pfv.Vector) error) error {
	for _, id := range f.pages {
		if err := ctx.Err(); err != nil {
			return err
		}
		vs, err := f.readPage(id, c)
		if err != nil {
			return err
		}
		for _, v := range vs {
			if err := fn(v); err != nil {
				return err
			}
		}
	}
	return nil
}

// ForEachLocated scans the file like ForEach but also reports each vector's
// physical position (page ordinal within the file and slot within the page),
// which approximation structures such as the VA-file record for later
// random fetches.
func (f *File) ForEachLocated(fn func(v pfv.Vector, pageOrdinal, slot int) error) error {
	for pi, id := range f.pages {
		vs, err := f.readPage(id, nil)
		if err != nil {
			return err
		}
		for si, v := range vs {
			if err := fn(v, pi, si); err != nil {
				return err
			}
		}
	}
	return nil
}

// VectorAt fetches one vector by its physical position (a random page
// access plus an in-page slot lookup).
func (f *File) VectorAt(pageOrdinal, slot int) (pfv.Vector, error) {
	return f.VectorAtCounted(pageOrdinal, slot, nil)
}

// VectorAtCounted is VectorAt with the page access charged to a per-query
// counter.
func (f *File) VectorAtCounted(pageOrdinal, slot int, c *pagefile.Counter) (pfv.Vector, error) {
	if pageOrdinal < 0 || pageOrdinal >= len(f.pages) {
		return pfv.Vector{}, fmt.Errorf("scan: page ordinal %d out of range [0,%d)", pageOrdinal, len(f.pages))
	}
	vs, err := f.readPage(f.pages[pageOrdinal], c)
	if err != nil {
		return pfv.Vector{}, err
	}
	if slot < 0 || slot >= len(vs) {
		return pfv.Vector{}, fmt.Errorf("scan: slot %d out of range [0,%d)", slot, len(vs))
	}
	return vs[slot], nil
}

// encodePage serializes up to perPage vectors into one page image.
func encodePage(vs []pfv.Vector, dim int) []byte {
	buf := make([]byte, pageHeaderSize, pageHeaderSize+len(vs)*pfv.EncodedSize(dim))
	binary.LittleEndian.PutUint16(buf, uint16(len(vs)))
	for _, v := range vs {
		buf = pfv.AppendBinary(buf, v)
	}
	return buf
}

// decodePage parses a page image into its vectors.
func decodePage(page []byte, dim int) ([]pfv.Vector, error) {
	if len(page) < pageHeaderSize {
		return nil, fmt.Errorf("scan: truncated page")
	}
	n := int(binary.LittleEndian.Uint16(page))
	out := make([]pfv.Vector, 0, n)
	off := pageHeaderSize
	for i := 0; i < n; i++ {
		v, used, err := pfv.DecodeBinary(page[off:], dim)
		if err != nil {
			return nil, fmt.Errorf("scan: entry %d: %w", i, err)
		}
		out = append(out, v)
		off += used
	}
	return out, nil
}

// KMLIQ answers a k-most-likely identification query (Definition 3) with a
// single sequential scan: it keeps the k highest-density candidates in a
// bounded heap while accumulating the Bayes denominator Σ_w p(q|w) in log
// space, then converts the survivors' densities into exact probabilities —
// the accuracy parameter of query.Engine is therefore ignored. Results are
// ordered by descending probability.
func (f *File) KMLIQ(ctx context.Context, q pfv.Vector, k int, _ float64) ([]query.Result, query.Stats, error) {
	return f.kmliq(ctx, q, k, true)
}

// KMLIQRanked answers a k-MLIQ without probability values: the same single
// scan as KMLIQ, skipping the denominator bookkeeping. Results carry log
// densities and NaN probabilities, matching the ranked queries of the index
// engines; the page cost is identical to KMLIQ because a scan reads
// everything either way.
func (f *File) KMLIQRanked(ctx context.Context, q pfv.Vector, k int) ([]query.Result, query.Stats, error) {
	return f.kmliq(ctx, q, k, false)
}

func (f *File) kmliq(ctx context.Context, q pfv.Vector, k int, withProbs bool) ([]query.Result, query.Stats, error) {
	if err := f.checkQuery(q, k); err != nil {
		return nil, query.Stats{}, err
	}
	var counter pagefile.Counter
	var stats query.Stats
	top := pqueue.NewTopK[pfv.Vector](k)
	var denom gaussian.LogSum
	err := f.forEach(ctx, &counter, func(v pfv.Vector) error {
		ld := pfv.JointLogDensity(f.combiner, v, q)
		if withProbs {
			denom.Add(ld)
		}
		top.Offer(v, ld)
		stats.VectorsScored++
		return nil
	})
	stats.PageAccesses = counter.LogicalReads()
	if err != nil {
		return nil, stats, err
	}
	logDenom := denom.Log()
	out := make([]query.Result, 0, top.Len())
	for _, v := range top.Sorted() {
		ld := pfv.JointLogDensity(f.combiner, v, q)
		r := query.Result{
			Vector: v, LogDensity: ld,
			Probability: math.NaN(), ProbLow: math.NaN(), ProbHigh: math.NaN(),
		}
		if withProbs {
			p := math.Exp(ld - logDenom)
			r.Probability, r.ProbLow, r.ProbHigh = p, p, p
		}
		out = append(out, r)
	}
	stats.CandidatesRetained = len(out)
	return out, stats, nil
}

// TIQ answers a threshold identification query (Definition 2) with the
// paper's two-scan algorithm: the first scan establishes the total relative
// probability mass, the second reports every object whose posterior reaches
// the threshold. Probabilities are exact, so the accuracy parameter is
// ignored. Results are ordered by descending probability.
func (f *File) TIQ(ctx context.Context, q pfv.Vector, pTheta float64, _ float64) ([]query.Result, query.Stats, error) {
	if err := f.checkQuery(q, 1); err != nil {
		return nil, query.Stats{}, err
	}
	if pTheta < 0 || pTheta > 1 {
		return nil, query.Stats{}, fmt.Errorf("scan: threshold %v outside [0,1]", pTheta)
	}
	var counter pagefile.Counter
	var stats query.Stats
	var denom gaussian.LogSum
	if err := f.forEach(ctx, &counter, func(v pfv.Vector) error {
		denom.Add(pfv.JointLogDensity(f.combiner, v, q))
		stats.VectorsScored++
		return nil
	}); err != nil {
		stats.PageAccesses = counter.LogicalReads()
		return nil, stats, err
	}
	logDenom := denom.Log()
	var out []query.Result
	if err := f.forEach(ctx, &counter, func(v pfv.Vector) error {
		ld := pfv.JointLogDensity(f.combiner, v, q)
		stats.VectorsScored++
		p := math.Exp(ld - logDenom)
		if p >= pTheta {
			out = append(out, query.Result{
				Vector: v, LogDensity: ld,
				Probability: p, ProbLow: p, ProbHigh: p,
			})
		}
		return nil
	}); err != nil {
		stats.PageAccesses = counter.LogicalReads()
		return nil, stats, err
	}
	stats.PageAccesses = counter.LogicalReads()
	stats.CandidatesRetained = len(out)
	query.SortByProbability(out)
	return query.NonNil(out), stats, nil
}

// NearestNeighbors answers a conventional k-nearest-neighbor query on the
// mean vectors using the Euclidean distance, ignoring all uncertainty
// information — the Figure 6 baseline. Results are ordered by ascending
// distance; Probability fields are left zero because the conventional model
// does not define them. LogDensity carries the negated distance so callers
// can rank.
func (f *File) NearestNeighbors(q pfv.Vector, k int) ([]query.Result, error) {
	if err := f.checkQuery(q, k); err != nil {
		return nil, err
	}
	top := pqueue.NewTopK[pfv.Vector](k)
	if err := f.ForEach(func(v pfv.Vector) error {
		top.Offer(v, -pfv.EuclideanDistance(v, q))
		return nil
	}); err != nil {
		return nil, err
	}
	out := make([]query.Result, 0, top.Len())
	for _, v := range top.Sorted() {
		out = append(out, query.Result{Vector: v, LogDensity: -pfv.EuclideanDistance(v, q)})
	}
	return out, nil
}

func (f *File) checkQuery(q pfv.Vector, k int) error {
	if q.Dim() != f.dim {
		return fmt.Errorf("scan: query dimension %d, file dimension %d", q.Dim(), f.dim)
	}
	if k <= 0 {
		return fmt.Errorf("scan: k must be positive, got %d", k)
	}
	return nil
}
