// Package scan implements the paper's baseline query processor: identification
// queries on top of a sequential scan over an unordered paged file of
// probabilistic feature vectors (§4). The k-MLIQ needs a single scan that
// simultaneously maintains the k best candidates and the Bayes denominator;
// the TIQ needs two scans — one to establish the total probability mass,
// one to report every object above the threshold.
//
// The file lives on the same pagefile substrate as the index structures, so
// the page-access and seek counts of all competitors are comparable.
package scan

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/gauss-tree/gausstree/internal/gaussian"
	"github.com/gauss-tree/gausstree/internal/pagefile"
	"github.com/gauss-tree/gausstree/internal/pfv"
	"github.com/gauss-tree/gausstree/internal/pqueue"
	"github.com/gauss-tree/gausstree/internal/query"
)

// pageHeaderSize is the per-page header: a little-endian uint16 entry count.
const pageHeaderSize = 2

// File is a sequential file of fixed-dimension probabilistic feature
// vectors, packed into pages. It is not safe for concurrent use.
type File struct {
	mgr     *pagefile.Manager
	dim     int
	perPage int
	pages   []pagefile.PageID
	count   int
	// lastUsed is the entry count of the final page, so appends do not
	// re-read it.
	lastUsed int
	// decoded caches parsed pages. Logical page accesses are still charged
	// against the manager; the cache only avoids re-parsing bytes, keeping
	// CPU-time comparisons against the (equally caching) index structures
	// fair.
	decoded map[pagefile.PageID][]pfv.Vector
}

// Create initializes an empty sequential file for vectors of the given
// dimension on the provided page manager.
func Create(mgr *pagefile.Manager, dim int) (*File, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("scan: invalid dimension %d", dim)
	}
	perPage := (mgr.PageSize() - pageHeaderSize) / pfv.EncodedSize(dim)
	if perPage < 1 {
		return nil, fmt.Errorf("scan: page size %d too small for dimension %d", mgr.PageSize(), dim)
	}
	return &File{mgr: mgr, dim: dim, perPage: perPage, decoded: make(map[pagefile.PageID][]pfv.Vector)}, nil
}

// Open reattaches a file from its metadata (dimension, page list and entry
// count), e.g. after reopening a persistent page file.
func Open(mgr *pagefile.Manager, dim int, pages []pagefile.PageID, count int) (*File, error) {
	f, err := Create(mgr, dim)
	if err != nil {
		return nil, err
	}
	f.pages = append([]pagefile.PageID(nil), pages...)
	f.count = count
	f.lastUsed = count - (len(pages)-1)*f.perPage
	if len(pages) == 0 {
		f.lastUsed = 0
	}
	return f, nil
}

// Dim returns the dimensionality of the stored vectors.
func (f *File) Dim() int { return f.dim }

// Len returns the number of stored vectors.
func (f *File) Len() int { return f.count }

// Pages returns the file's data pages in scan order (metadata for Open).
func (f *File) Pages() []pagefile.PageID {
	return append([]pagefile.PageID(nil), f.pages...)
}

// PerPage returns the number of vectors stored per page.
func (f *File) PerPage() int { return f.perPage }

// Append adds a vector to the end of the file.
func (f *File) Append(v pfv.Vector) error {
	if v.Dim() != f.dim {
		return fmt.Errorf("scan: vector dimension %d, file dimension %d", v.Dim(), f.dim)
	}
	if len(f.pages) == 0 || f.lastUsed >= f.perPage {
		id, err := f.mgr.Allocate()
		if err != nil {
			return err
		}
		if err := f.mgr.Write(id, encodePage(nil, f.dim)); err != nil {
			return err
		}
		f.pages = append(f.pages, id)
		f.lastUsed = 0
	}
	last := f.pages[len(f.pages)-1]
	vs, err := f.readPage(last)
	if err != nil {
		return err
	}
	vs = append(vs[:len(vs):len(vs)], v)
	if err := f.mgr.Write(last, encodePage(vs, f.dim)); err != nil {
		return err
	}
	f.decoded[last] = vs
	f.lastUsed = len(vs)
	f.count++
	return nil
}

// readPage returns the decoded vectors of one page, charging the logical
// page access and reusing the decoded cache.
func (f *File) readPage(id pagefile.PageID) ([]pfv.Vector, error) {
	page, err := f.mgr.Read(id)
	if err != nil {
		return nil, err
	}
	if vs, ok := f.decoded[id]; ok {
		return vs, nil
	}
	vs, err := decodePage(page, f.dim)
	if err != nil {
		return nil, err
	}
	f.decoded[id] = vs
	return vs, nil
}

// AppendAll adds a batch of vectors.
func (f *File) AppendAll(vs []pfv.Vector) error {
	for _, v := range vs {
		if err := f.Append(v); err != nil {
			return err
		}
	}
	return nil
}

// ForEach scans the file in storage order, invoking fn for every vector.
// Iteration stops early if fn returns an error, which is propagated.
func (f *File) ForEach(fn func(pfv.Vector) error) error {
	for _, id := range f.pages {
		vs, err := f.readPage(id)
		if err != nil {
			return err
		}
		for _, v := range vs {
			if err := fn(v); err != nil {
				return err
			}
		}
	}
	return nil
}

// ForEachLocated scans the file like ForEach but also reports each vector's
// physical position (page ordinal within the file and slot within the page),
// which approximation structures such as the VA-file record for later
// random fetches.
func (f *File) ForEachLocated(fn func(v pfv.Vector, pageOrdinal, slot int) error) error {
	for pi, id := range f.pages {
		vs, err := f.readPage(id)
		if err != nil {
			return err
		}
		for si, v := range vs {
			if err := fn(v, pi, si); err != nil {
				return err
			}
		}
	}
	return nil
}

// VectorAt fetches one vector by its physical position (a random page
// access plus an in-page slot lookup).
func (f *File) VectorAt(pageOrdinal, slot int) (pfv.Vector, error) {
	if pageOrdinal < 0 || pageOrdinal >= len(f.pages) {
		return pfv.Vector{}, fmt.Errorf("scan: page ordinal %d out of range [0,%d)", pageOrdinal, len(f.pages))
	}
	vs, err := f.readPage(f.pages[pageOrdinal])
	if err != nil {
		return pfv.Vector{}, err
	}
	if slot < 0 || slot >= len(vs) {
		return pfv.Vector{}, fmt.Errorf("scan: slot %d out of range [0,%d)", slot, len(vs))
	}
	return vs[slot], nil
}

// encodePage serializes up to perPage vectors into one page image.
func encodePage(vs []pfv.Vector, dim int) []byte {
	buf := make([]byte, pageHeaderSize, pageHeaderSize+len(vs)*pfv.EncodedSize(dim))
	binary.LittleEndian.PutUint16(buf, uint16(len(vs)))
	for _, v := range vs {
		buf = pfv.AppendBinary(buf, v)
	}
	return buf
}

// decodePage parses a page image into its vectors.
func decodePage(page []byte, dim int) ([]pfv.Vector, error) {
	if len(page) < pageHeaderSize {
		return nil, fmt.Errorf("scan: truncated page")
	}
	n := int(binary.LittleEndian.Uint16(page))
	out := make([]pfv.Vector, 0, n)
	off := pageHeaderSize
	for i := 0; i < n; i++ {
		v, used, err := pfv.DecodeBinary(page[off:], dim)
		if err != nil {
			return nil, fmt.Errorf("scan: entry %d: %w", i, err)
		}
		out = append(out, v)
		off += used
	}
	return out, nil
}

// KMLIQ answers a k-most-likely identification query (Definition 3) with a
// single sequential scan: it keeps the k highest-density candidates in a
// bounded heap while accumulating the Bayes denominator Σ_w p(q|w) in log
// space, then converts the survivors' densities into exact probabilities.
// Results are ordered by descending probability.
func (f *File) KMLIQ(q pfv.Vector, k int, c gaussian.Combiner) ([]query.Result, error) {
	if err := f.checkQuery(q); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("scan: k must be positive, got %d", k)
	}
	top := pqueue.NewTopK[pfv.Vector](k)
	var denom gaussian.LogSum
	err := f.ForEach(func(v pfv.Vector) error {
		ld := pfv.JointLogDensity(c, v, q)
		denom.Add(ld)
		top.Offer(v, ld)
		return nil
	})
	if err != nil {
		return nil, err
	}
	logDenom := denom.Log()
	out := make([]query.Result, 0, top.Len())
	for _, v := range top.Sorted() {
		ld := pfv.JointLogDensity(c, v, q)
		p := math.Exp(ld - logDenom)
		out = append(out, query.Result{
			Vector: v, LogDensity: ld,
			Probability: p, ProbLow: p, ProbHigh: p,
		})
	}
	return out, nil
}

// TIQ answers a threshold identification query (Definition 2) with the
// paper's two-scan algorithm: the first scan establishes the total relative
// probability mass, the second reports every object whose posterior reaches
// the threshold. Results are ordered by descending probability.
func (f *File) TIQ(q pfv.Vector, pTheta float64, c gaussian.Combiner) ([]query.Result, error) {
	if err := f.checkQuery(q); err != nil {
		return nil, err
	}
	if pTheta < 0 || pTheta > 1 {
		return nil, fmt.Errorf("scan: threshold %v outside [0,1]", pTheta)
	}
	var denom gaussian.LogSum
	if err := f.ForEach(func(v pfv.Vector) error {
		denom.Add(pfv.JointLogDensity(c, v, q))
		return nil
	}); err != nil {
		return nil, err
	}
	logDenom := denom.Log()
	var out []query.Result
	if err := f.ForEach(func(v pfv.Vector) error {
		ld := pfv.JointLogDensity(c, v, q)
		p := math.Exp(ld - logDenom)
		if p >= pTheta {
			out = append(out, query.Result{
				Vector: v, LogDensity: ld,
				Probability: p, ProbLow: p, ProbHigh: p,
			})
		}
		return nil
	}); err != nil {
		return nil, err
	}
	query.SortByProbability(out)
	return out, nil
}

// NearestNeighbors answers a conventional k-nearest-neighbor query on the
// mean vectors using the Euclidean distance, ignoring all uncertainty
// information — the Figure 6 baseline. Results are ordered by ascending
// distance; Probability fields are left zero because the conventional model
// does not define them. LogDensity carries the negated distance so callers
// can rank.
func (f *File) NearestNeighbors(q pfv.Vector, k int) ([]query.Result, error) {
	if err := f.checkQuery(q); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("scan: k must be positive, got %d", k)
	}
	top := pqueue.NewTopK[pfv.Vector](k)
	if err := f.ForEach(func(v pfv.Vector) error {
		top.Offer(v, -pfv.EuclideanDistance(v, q))
		return nil
	}); err != nil {
		return nil, err
	}
	out := make([]query.Result, 0, top.Len())
	for _, v := range top.Sorted() {
		out = append(out, query.Result{Vector: v, LogDensity: -pfv.EuclideanDistance(v, q)})
	}
	return out, nil
}

func (f *File) checkQuery(q pfv.Vector) error {
	if q.Dim() != f.dim {
		return fmt.Errorf("scan: query dimension %d, file dimension %d", q.Dim(), f.dim)
	}
	return nil
}
