package scan

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/gauss-tree/gausstree/internal/gaussian"
	"github.com/gauss-tree/gausstree/internal/pagefile"
	"github.com/gauss-tree/gausstree/internal/pfv"
)

func newFile(t *testing.T, dim int) (*File, *pagefile.Manager) {
	t.Helper()
	mgr, err := pagefile.NewManager(pagefile.NewMemBackend(1024), 1024)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Create(mgr, dim, gaussian.CombineAdditive)
	if err != nil {
		t.Fatal(err)
	}
	return f, mgr
}

func randomVectors(rng *rand.Rand, n, dim int) []pfv.Vector {
	out := make([]pfv.Vector, n)
	for i := range out {
		mean := make([]float64, dim)
		sigma := make([]float64, dim)
		for j := range mean {
			mean[j] = rng.Float64() * 10
			sigma[j] = rng.Float64()*0.5 + 0.05
		}
		out[i] = pfv.MustNew(uint64(i+1), mean, sigma)
	}
	return out
}

func TestCreateValidation(t *testing.T) {
	mgr, _ := pagefile.NewManager(pagefile.NewMemBackend(64), 64)
	if _, err := Create(mgr, 0, gaussian.CombineAdditive); err == nil {
		t.Error("dim 0 should fail")
	}
	// 64-byte pages cannot hold a 27-dim vector (440 bytes).
	if _, err := Create(mgr, 27, gaussian.CombineAdditive); err == nil {
		t.Error("oversized entries should fail")
	}
}

func TestAppendAndForEachOrder(t *testing.T) {
	f, _ := newFile(t, 3)
	rng := rand.New(rand.NewSource(1))
	vs := randomVectors(rng, 57, 3) // >1 page with 1024-byte pages (56B entries)
	if err := f.AppendAll(vs); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 57 {
		t.Errorf("Len = %d", f.Len())
	}
	var got []pfv.Vector
	if err := f.ForEach(func(v pfv.Vector) error {
		got = append(got, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vs) {
		t.Fatalf("scanned %d of %d", len(got), len(vs))
	}
	for i := range vs {
		if !vs[i].Equal(got[i]) {
			t.Fatalf("vector %d mismatch", i)
		}
	}
	if len(f.Pages()) < 2 {
		t.Errorf("expected multiple pages, got %d", len(f.Pages()))
	}
}

func TestAppendDimensionMismatch(t *testing.T) {
	f, _ := newFile(t, 2)
	if err := f.Append(pfv.MustNew(1, []float64{1}, []float64{1})); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	f, _ := newFile(t, 2)
	rng := rand.New(rand.NewSource(2))
	f.AppendAll(randomVectors(rng, 30, 2))
	sentinel := errors.New("stop")
	n := 0
	err := f.ForEach(func(pfv.Vector) error {
		n++
		if n == 5 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
	if n != 5 {
		t.Errorf("visited %d", n)
	}
}

func TestOpenReattach(t *testing.T) {
	f, mgr := newFile(t, 2)
	rng := rand.New(rand.NewSource(3))
	vs := randomVectors(rng, 40, 2)
	f.AppendAll(vs)

	g, err := Open(mgr, 2, gaussian.CombineAdditive, f.Pages(), f.Len())
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 40 {
		t.Errorf("reopened Len = %d", g.Len())
	}
	// Appending to the reopened file must continue the last page.
	extra := pfv.MustNew(1000, []float64{1, 2}, []float64{0.1, 0.1})
	if err := g.Append(extra); err != nil {
		t.Fatal(err)
	}
	var last pfv.Vector
	g.ForEach(func(v pfv.Vector) error { last = v; return nil })
	if last.ID != 1000 {
		t.Errorf("last vector id = %d", last.ID)
	}
	if len(g.Pages()) != len(f.Pages()) {
		t.Errorf("append after reopen should reuse the last page: %d vs %d pages",
			len(g.Pages()), len(f.Pages()))
	}
}

func TestKMLIQFindsGroundTruth(t *testing.T) {
	f, _ := newFile(t, 4)
	rng := rand.New(rand.NewSource(4))
	vs := randomVectors(rng, 200, 4)
	f.AppendAll(vs)

	// The query is a re-observation of object 42.
	src := vs[41]
	mean := make([]float64, 4)
	sigma := make([]float64, 4)
	for i := range mean {
		sigma[i] = 0.1
		mean[i] = src.Mean[i] + rng.NormFloat64()*0.02
	}
	q := pfv.MustNew(0, mean, sigma)
	res, _, err := f.KMLIQ(context.Background(), q, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Vector.ID != 42 {
		t.Errorf("top hit = %d, want 42", res[0].Vector.ID)
	}
	// Ordered by probability, probabilities in [0,1], exact intervals.
	sum := 0.0
	for i, r := range res {
		if r.Probability < 0 || r.Probability > 1 {
			t.Errorf("probability out of range: %v", r.Probability)
		}
		if r.ProbLow != r.Probability || r.ProbHigh != r.Probability {
			t.Errorf("scan probabilities must be exact")
		}
		if i > 0 && res[i-1].Probability < r.Probability {
			t.Error("results not sorted by probability")
		}
		sum += r.Probability
	}
	if sum > 1+1e-9 {
		t.Errorf("probabilities sum to %v > 1 (paper §4 property 1)", sum)
	}
}

func TestKMLIQAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vs := randomVectors(rng, 150, 3)
	q := pfv.MustNew(0, []float64{5, 5, 5}, []float64{0.3, 0.3, 0.3})

	for _, c := range []gaussian.Combiner{gaussian.CombineAdditive, gaussian.CombineConvolution} {
		mgr, err := pagefile.NewManager(pagefile.NewMemBackend(1024), 1024)
		if err != nil {
			t.Fatal(err)
		}
		f, err := Create(mgr, 3, c)
		if err != nil {
			t.Fatal(err)
		}
		f.AppendAll(vs)
		// Brute force posterior.
		ps := pfv.Posterior(c, vs, q)
		bestIdx := make([]int, len(vs))
		for i := range bestIdx {
			bestIdx[i] = i
		}
		// Select top 5 by posterior.
		for i := 0; i < 5; i++ {
			for j := i + 1; j < len(bestIdx); j++ {
				if ps[bestIdx[j]] > ps[bestIdx[i]] {
					bestIdx[i], bestIdx[j] = bestIdx[j], bestIdx[i]
				}
			}
		}
		res, _, err := f.KMLIQ(context.Background(), q, 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			want := vs[bestIdx[i]]
			if res[i].Vector.ID != want.ID {
				t.Errorf("%v: rank %d = %d, want %d", c, i, res[i].Vector.ID, want.ID)
			}
			if math.Abs(res[i].Probability-ps[bestIdx[i]]) > 1e-9 {
				t.Errorf("%v: rank %d probability %v, want %v", c, i, res[i].Probability, ps[bestIdx[i]])
			}
		}
	}
}

func TestKMLIQLargerKThanDB(t *testing.T) {
	f, _ := newFile(t, 2)
	rng := rand.New(rand.NewSource(6))
	f.AppendAll(randomVectors(rng, 4, 2))
	q := pfv.MustNew(0, []float64{1, 1}, []float64{1, 1})
	res, _, err := f.KMLIQ(context.Background(), q, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Errorf("got %d results, want all 4", len(res))
	}
	sum := 0.0
	for _, r := range res {
		sum += r.Probability
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("full-database posteriors must sum to 1, got %v", sum)
	}
}

func TestKMLIQInvalidArgs(t *testing.T) {
	f, _ := newFile(t, 2)
	q := pfv.MustNew(0, []float64{1, 1}, []float64{1, 1})
	if _, _, err := f.KMLIQ(context.Background(), q, 0, 0); err == nil {
		t.Error("k=0 should fail")
	}
	bad := pfv.MustNew(0, []float64{1}, []float64{1})
	if _, _, err := f.KMLIQ(context.Background(), bad, 1, 0); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestTIQMatchesPosterior(t *testing.T) {
	f, _ := newFile(t, 3)
	rng := rand.New(rand.NewSource(7))
	vs := randomVectors(rng, 120, 3)
	f.AppendAll(vs)
	q := vs[10].Clone()
	q.ID = 0

	ps := pfv.Posterior(gaussian.CombineAdditive, vs, q)
	for _, pTheta := range []float64{0.01, 0.2, 0.8} {
		want := map[uint64]float64{}
		for i, p := range ps {
			if p >= pTheta {
				want[vs[i].ID] = p
			}
		}
		res, _, err := f.TIQ(context.Background(), q, pTheta, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(want) {
			t.Fatalf("Pθ=%v: got %d results, want %d", pTheta, len(res), len(want))
		}
		for _, r := range res {
			wp, ok := want[r.Vector.ID]
			if !ok {
				t.Errorf("Pθ=%v: unexpected result %d", pTheta, r.Vector.ID)
				continue
			}
			if math.Abs(r.Probability-wp) > 1e-9 {
				t.Errorf("Pθ=%v: object %d probability %v, want %v", pTheta, r.Vector.ID, r.Probability, wp)
			}
		}
	}
}

func TestTIQThresholdValidation(t *testing.T) {
	f, _ := newFile(t, 2)
	q := pfv.MustNew(0, []float64{1, 1}, []float64{1, 1})
	for _, bad := range []float64{-0.1, 1.1} {
		if _, _, err := f.TIQ(context.Background(), q, bad, 0); err == nil {
			t.Errorf("threshold %v should fail", bad)
		}
	}
}

func TestTIQEmptyFile(t *testing.T) {
	f, _ := newFile(t, 2)
	q := pfv.MustNew(0, []float64{1, 1}, []float64{1, 1})
	res, _, err := f.TIQ(context.Background(), q, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("empty file should yield no results")
	}
}

func TestNearestNeighbors(t *testing.T) {
	f, _ := newFile(t, 2)
	vs := []pfv.Vector{
		pfv.MustNew(1, []float64{0, 0}, []float64{5, 5}), // huge sigma: must be ignored
		pfv.MustNew(2, []float64{1, 0}, []float64{0.1, 0.1}),
		pfv.MustNew(3, []float64{3, 4}, []float64{0.1, 0.1}),
	}
	f.AppendAll(vs)
	q := pfv.MustNew(0, []float64{0.1, 0}, []float64{1, 1})
	res, err := f.NearestNeighbors(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Vector.ID != 1 || res[1].Vector.ID != 2 {
		t.Errorf("NN order = %v", res)
	}
	if _, err := f.NearestNeighbors(q, 0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestScanPageAccessCounts(t *testing.T) {
	f, mgr := newFile(t, 3)
	rng := rand.New(rand.NewSource(8))
	f.AppendAll(randomVectors(rng, 500, 3))
	q := pfv.MustNew(0, []float64{5, 5, 5}, []float64{0.5, 0.5, 0.5})
	nPages := uint64(len(f.Pages()))

	mgr.ResetStats()
	mgr.DropCache()
	if _, _, err := f.KMLIQ(context.Background(), q, 1, 0); err != nil {
		t.Fatal(err)
	}
	s := mgr.Stats()
	if s.LogicalReads != nPages {
		t.Errorf("k-MLIQ logical reads = %d, want %d (one scan)", s.LogicalReads, nPages)
	}
	if s.Seeks != 1 {
		t.Errorf("sequential k-MLIQ seeks = %d, want 1", s.Seeks)
	}

	mgr.ResetStats()
	mgr.DropCache()
	if _, _, err := f.TIQ(context.Background(), q, 0.5, 0); err != nil {
		t.Fatal(err)
	}
	s = mgr.Stats()
	if s.LogicalReads != 2*nPages {
		t.Errorf("TIQ logical reads = %d, want %d (two scans)", s.LogicalReads, 2*nPages)
	}
}
