// Package xtree implements the comparison baseline of the paper's
// efficiency evaluation (§6): an X-tree (Berchtold, Keim, Kriegel, VLDB'96)
// storing rectangular approximations of probabilistic feature vectors — the
// per-dimension 95% quantile boxes [μᵢ−z·σᵢ, μᵢ+z·σᵢ]. Identification
// queries are processed as a filter step (all data boxes intersecting the
// query's box) followed by a refinement step computing exact joint
// probabilities over the candidate set only. As the paper notes, this method
// permits false dismissals: an object whose box misses the query box is
// never considered, however probable it might be.
//
// The X-tree machinery follows the original design: R*-style topological
// splits, an overlap-minimal split guided by the split history when the
// topological split overlaps too much, and supernodes (multi-page directory
// nodes, chained through continuation pointers) when no balanced
// overlap-minimal split exists.
package xtree

import (
	"errors"
	"fmt"
	"sync"

	"github.com/gauss-tree/gausstree/internal/gaussian"
	"github.com/gauss-tree/gausstree/internal/pagefile"
	"github.com/gauss-tree/gausstree/internal/pfv"
	"github.com/gauss-tree/gausstree/internal/rect"
)

// Config carries the X-tree's tunable policies.
type Config struct {
	// Coverage is the quantile mass of the box approximation (default 0.95,
	// the paper's choice).
	Coverage float64
	// MaxOverlap is the largest tolerable overlap fraction of a topological
	// directory split before the overlap-minimal strategy kicks in
	// (default 0.2, the X-tree paper's recommendation).
	MaxOverlap float64
	// MinFanout is the smallest acceptable balance of an overlap-minimal
	// split, as a fraction of the entries (default 0.35).
	MinFanout float64
	// Combiner is the σ-combination rule used during refinement.
	Combiner gaussian.Combiner
}

func (c *Config) fillDefaults() {
	if c.Coverage <= 0 || c.Coverage >= 1 {
		c.Coverage = 0.95
	}
	if c.MaxOverlap <= 0 {
		c.MaxOverlap = 0.2
	}
	if c.MinFanout <= 0 {
		c.MinFanout = 0.35
	}
}

// Tree is an X-tree over quantile-box approximations of pfv. It is safe for
// concurrent readers; Insert requires external exclusion.
type Tree struct {
	mgr    *pagefile.Manager
	dim    int
	cfg    Config
	z      float64 // quantile factor: box = μ ± z·σ
	root   pagefile.PageID
	height int
	count  int

	perPageLeaf  int
	perPageInner int
	minLeaf      int
	minInner     int

	// decoded caches parsed nodes by head page id, guarded by decMu so
	// parallel queries can share it. Logical page accesses (including every
	// page of a supernode chain) are still charged against the manager on
	// each read.
	decMu   sync.RWMutex
	decoded map[pagefile.PageID]*node
}

// ErrDimension is returned on query/vector dimensionality mismatches.
var ErrDimension = errors.New("xtree: dimension mismatch")

// ErrInvalidArg is wrapped by argument-validation failures (non-positive
// k or dimension, thresholds outside [0,1]); test with errors.Is.
var ErrInvalidArg = errors.New("xtree: invalid argument")

// New creates an empty X-tree for vectors of the given dimension.
func New(mgr *pagefile.Manager, dim int, cfg Config) (*Tree, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("%w: invalid dimension %d", ErrInvalidArg, dim)
	}
	cfg.fillDefaults()
	perLeaf := (mgr.PageSize() - nodeHeaderSize) / leafEntrySize(dim)
	perInner := (mgr.PageSize() - nodeHeaderSize) / innerEntrySize(dim)
	if perLeaf < 2 || perInner < 2 {
		return nil, fmt.Errorf("xtree: page size %d too small for dimension %d", mgr.PageSize(), dim)
	}
	t := &Tree{
		mgr:          mgr,
		dim:          dim,
		cfg:          cfg,
		z:            gaussian.StdQuantile(0.5 + cfg.Coverage/2),
		height:       1,
		perPageLeaf:  perLeaf,
		perPageInner: perInner,
		minLeaf:      max(1, perLeaf*2/5),
		minInner:     max(2, perInner*2/5),
		decoded:      make(map[pagefile.PageID]*node),
	}
	rootID, err := mgr.Allocate()
	if err != nil {
		return nil, err
	}
	t.root = rootID
	if err := t.writeNode(&node{id: rootID, leaf: true, pages: []pagefile.PageID{rootID}}); err != nil {
		return nil, err
	}
	return t, nil
}

// Dim returns the indexed dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Len returns the number of stored vectors.
func (t *Tree) Len() int { return t.count }

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int { return t.height }

// QuantileFactor returns the z used for box approximations.
func (t *Tree) QuantileFactor() float64 { return t.z }

// boxOf returns the quantile-box approximation of a vector.
func (t *Tree) boxOf(v pfv.Vector) rect.Rect {
	lo, hi := v.QuantileBox(t.cfg.Coverage, nil, nil)
	return rect.Rect{Lo: lo, Hi: hi}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
