package xtree

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"github.com/gauss-tree/gausstree/internal/gaussian"
	"github.com/gauss-tree/gausstree/internal/pagefile"
	"github.com/gauss-tree/gausstree/internal/pfv"
	"github.com/gauss-tree/gausstree/internal/rect"
)

func newXTree(t *testing.T, dim, pageSize int, cfg Config) *Tree {
	t.Helper()
	mgr, err := pagefile.NewManager(pagefile.NewMemBackend(pageSize), pageSize)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(mgr, dim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func clustered(rng *rand.Rand, n, dim, clusters int) []pfv.Vector {
	centers := make([][]float64, clusters)
	for i := range centers {
		centers[i] = make([]float64, dim)
		for j := range centers[i] {
			centers[i][j] = rng.Float64() * 100
		}
	}
	out := make([]pfv.Vector, n)
	for i := range out {
		c := centers[rng.Intn(clusters)]
		mean := make([]float64, dim)
		sigma := make([]float64, dim)
		for j := range mean {
			mean[j] = c[j] + rng.NormFloat64()*3
			sigma[j] = rng.Float64()*1.5 + 0.05
		}
		out[i] = pfv.MustNew(uint64(i+1), mean, sigma)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	mgr, _ := pagefile.NewManager(pagefile.NewMemBackend(128), 128)
	if _, err := New(mgr, 0, Config{}); err == nil {
		t.Error("dim 0 should fail")
	}
	if _, err := New(mgr, 27, Config{}); err == nil {
		t.Error("tiny pages should fail")
	}
}

func TestInsertMaintainsInvariants(t *testing.T) {
	tr := newXTree(t, 3, 1024, Config{})
	rng := rand.New(rand.NewSource(1))
	vs := clustered(rng, 500, 3, 5)
	for i, v := range vs {
		if err := tr.Insert(v); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if (i+1)%100 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 500 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Height() < 2 {
		t.Errorf("height = %d, expected splits", tr.Height())
	}
}

func TestCollectAllMatchesInserted(t *testing.T) {
	tr := newXTree(t, 2, 512, Config{})
	rng := rand.New(rand.NewSource(2))
	vs := clustered(rng, 300, 2, 4)
	if err := tr.InsertAll(vs); err != nil {
		t.Fatal(err)
	}
	got, err := tr.CollectAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vs) {
		t.Fatalf("collected %d of %d", len(got), len(vs))
	}
	sort.Slice(got, func(a, b int) bool { return got[a].ID < got[b].ID })
	for i := range vs {
		if !vs[i].Equal(got[i]) {
			t.Fatalf("vector %d mismatch", i)
		}
	}
}

func TestRangeSearchEqualsBruteForce(t *testing.T) {
	tr := newXTree(t, 2, 512, Config{})
	rng := rand.New(rand.NewSource(3))
	vs := clustered(rng, 400, 2, 3)
	if err := tr.InsertAll(vs); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		lo := []float64{rng.Float64() * 100, rng.Float64() * 100}
		hi := []float64{lo[0] + rng.Float64()*30, lo[1] + rng.Float64()*30}
		r := rect.MustNew(lo, hi)
		got, err := tr.RangeSearch(r)
		if err != nil {
			t.Fatal(err)
		}
		gotIDs := map[uint64]bool{}
		for _, v := range got {
			gotIDs[v.ID] = true
		}
		for _, v := range vs {
			want := tr.boxOf(v).Intersects(r)
			if want != gotIDs[v.ID] {
				t.Fatalf("trial %d: vector %d intersect=%v but reported=%v",
					trial, v.ID, want, gotIDs[v.ID])
			}
		}
	}
}

func TestKMLIQSelfQuery(t *testing.T) {
	tr := newXTree(t, 3, 1024, Config{})
	rng := rand.New(rand.NewSource(4))
	vs := clustered(rng, 300, 3, 4)
	if err := tr.InsertAll(vs); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for trial := 0; trial < 40; trial++ {
		src := vs[rng.Intn(len(vs))]
		mean := make([]float64, 3)
		sigma := make([]float64, 3)
		for i := range mean {
			sigma[i] = 0.2
			mean[i] = src.Mean[i] + rng.NormFloat64()*0.1
		}
		q := pfv.MustNew(0, mean, sigma)
		res, _, err := tr.KMLIQ(context.Background(), q, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 1 && res[0].Vector.ID == src.ID {
			hits++
		}
	}
	// The box approximation permits false dismissals, but with generous
	// boxes and near-exact queries it should almost always find the source.
	if hits < 35 {
		t.Errorf("only %d/40 self-queries found their source", hits)
	}
}

func TestTIQFiltersOnThreshold(t *testing.T) {
	tr := newXTree(t, 2, 512, Config{})
	rng := rand.New(rand.NewSource(5))
	vs := clustered(rng, 200, 2, 2)
	if err := tr.InsertAll(vs); err != nil {
		t.Fatal(err)
	}
	q := vs[13].Clone()
	q.ID = 0
	res, _, err := tr.TIQ(context.Background(), q, 0.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Probability < 0.3 {
			t.Errorf("result %d below threshold: %v", r.Vector.ID, r.Probability)
		}
	}
	// The exact copy must be among the answers for a modest threshold.
	found := false
	for _, r := range res {
		if r.Vector.ID == vs[13].ID {
			found = true
		}
	}
	if !found {
		t.Error("exact duplicate missing from TIQ result")
	}
}

func TestSupernodesForm(t *testing.T) {
	// Highly overlapping data in many dimensions drives directory overlap
	// up, which must eventually produce supernodes rather than bad splits.
	tr := newXTree(t, 8, 1024, Config{MaxOverlap: 0.01})
	rng := rand.New(rand.NewSource(6))
	vs := make([]pfv.Vector, 1500)
	for i := range vs {
		mean := make([]float64, 8)
		sigma := make([]float64, 8)
		for j := range mean {
			mean[j] = rng.NormFloat64() * 0.3 // one dense blob: heavy overlap
			sigma[j] = rng.Float64()*2 + 0.5  // wide boxes
		}
		vs[i] = pfv.MustNew(uint64(i+1), mean, sigma)
	}
	if err := tr.InsertAll(vs); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	supers, pages, err := tr.SupernodeCount()
	if err != nil {
		t.Fatal(err)
	}
	if supers == 0 {
		t.Skip("no supernodes formed with this data; acceptable but not exercising the path")
	}
	if pages <= supers {
		t.Errorf("%d supernodes spanning %d pages: chains must exceed one page", supers, pages)
	}
}

func TestQueryValidation(t *testing.T) {
	tr := newXTree(t, 2, 512, Config{})
	good := pfv.MustNew(0, []float64{1, 1}, []float64{1, 1})
	bad := pfv.MustNew(0, []float64{1}, []float64{1})
	if _, _, err := tr.KMLIQ(context.Background(), bad, 1, 0); err == nil {
		t.Error("dimension mismatch should fail")
	}
	if _, _, err := tr.KMLIQ(context.Background(), good, 0, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, _, err := tr.TIQ(context.Background(), good, 2, 0); err == nil {
		t.Error("threshold > 1 should fail")
	}
	if _, err := tr.RangeSearch(rect.MustNew([]float64{0}, []float64{1})); err == nil {
		t.Error("range dimension mismatch should fail")
	}
	if err := tr.Insert(bad); err == nil {
		t.Error("insert dimension mismatch should fail")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}
	cfg.fillDefaults()
	if cfg.Coverage != 0.95 || cfg.MaxOverlap != 0.2 || cfg.MinFanout != 0.35 {
		t.Errorf("defaults = %+v", cfg)
	}
	tr := newXTree(t, 2, 512, Config{})
	if z := tr.QuantileFactor(); z < 1.9 || z > 2.0 {
		t.Errorf("z = %v, want ≈1.96", z)
	}
	if tr.cfg.Combiner != gaussian.CombineAdditive {
		t.Errorf("default combiner = %v", tr.cfg.Combiner)
	}
}
