package xtree

import (
	"context"
	"errors"
	"testing"

	"github.com/gauss-tree/gausstree/internal/pagefile"
	"github.com/gauss-tree/gausstree/internal/pfv"
)

// TestSentinelWrapping pins the ErrInvalidArg contract on the comparison
// baseline: argument-validation failures must be matchable with errors.Is.
func TestSentinelWrapping(t *testing.T) {
	mgr, err := pagefile.NewManager(pagefile.NewMemBackend(4096), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(mgr, 0, Config{}); !errors.Is(err, ErrInvalidArg) {
		t.Errorf("New(dim=0) = %v; want errors.Is ErrInvalidArg", err)
	}

	tr := newXTree(t, 2, 4096, Config{})
	q := pfv.MustNew(0, []float64{1, 1}, []float64{1, 1})
	ctx := context.Background()
	if _, _, err := tr.KMLIQ(ctx, q, 0, 0); !errors.Is(err, ErrInvalidArg) {
		t.Errorf("KMLIQ(k=0) = %v; want errors.Is ErrInvalidArg", err)
	}
	if _, _, err := tr.TIQ(ctx, q, 1.5, 0); !errors.Is(err, ErrInvalidArg) {
		t.Errorf("TIQ(1.5) = %v; want errors.Is ErrInvalidArg", err)
	}
}
