package xtree

import (
	"fmt"

	"github.com/gauss-tree/gausstree/internal/pagefile"
	"github.com/gauss-tree/gausstree/internal/pfv"
	"github.com/gauss-tree/gausstree/internal/rect"
)

// CheckInvariants verifies the X-tree's structural guarantees: uniform leaf
// depth, directory entry boxes exactly bounding their subtrees, fill factors
// (supernodes are exempt from the upper bound by design, and a supernode
// must actually span multiple pages), and the total count.
func (t *Tree) CheckInvariants() error {
	leafDepth := -1
	var walk func(id pagefile.PageID, depth int, isRoot bool) (int, rect.Rect, error)
	walk = func(id pagefile.PageID, depth int, isRoot bool) (int, rect.Rect, error) {
		n, err := t.readNode(id)
		if err != nil {
			return 0, rect.Rect{}, err
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				return 0, rect.Rect{}, fmt.Errorf("xtree: leaf %d at depth %d, expected %d", id, depth, leafDepth)
			}
			if len(n.vectors) > t.perPageLeaf {
				return 0, rect.Rect{}, fmt.Errorf("xtree: leaf %d overfull: %d > %d", id, len(n.vectors), t.perPageLeaf)
			}
			if !isRoot && len(n.vectors) < t.minLeaf {
				return 0, rect.Rect{}, fmt.Errorf("xtree: leaf %d underfull: %d < %d", id, len(n.vectors), t.minLeaf)
			}
			if n.isSuper() {
				return 0, rect.Rect{}, fmt.Errorf("xtree: leaf %d is a supernode", id)
			}
			return len(n.vectors), t.computeBox(n), nil
		}
		expectPages := pagesNeeded(len(n.children), t.perPageInner)
		if len(n.pages) != expectPages {
			return 0, rect.Rect{}, fmt.Errorf("xtree: node %d has %d pages, expected %d for %d entries",
				id, len(n.pages), expectPages, len(n.children))
		}
		if !isRoot && !n.isSuper() && len(n.children) < t.minInner {
			return 0, rect.Rect{}, fmt.Errorf("xtree: inner %d underfull: %d < %d", id, len(n.children), t.minInner)
		}
		total := 0
		var box rect.Rect
		for i, c := range n.children {
			cnt, cbox, err := walk(c.page, depth+1, false)
			if err != nil {
				return 0, rect.Rect{}, err
			}
			if !cbox.Equal(c.box) {
				return 0, rect.Rect{}, fmt.Errorf("xtree: node %d entry %d box not tight", id, i)
			}
			total += cnt
			if i == 0 {
				box = cbox.Clone()
			} else {
				box.ExtendInPlace(cbox)
			}
		}
		return total, box, nil
	}
	total, _, err := walk(t.root, 0, true)
	if err != nil {
		return err
	}
	if total != t.count {
		return fmt.Errorf("xtree: Len %d but subtrees hold %d", t.count, total)
	}
	return nil
}

// CollectAll returns every stored vector.
func (t *Tree) CollectAll() ([]pfv.Vector, error) {
	var out []pfv.Vector
	var walk func(id pagefile.PageID) error
	walk = func(id pagefile.PageID) error {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.leaf {
			out = append(out, n.vectors...)
			return nil
		}
		for _, c := range n.children {
			if err := walk(c.page); err != nil {
				return err
			}
		}
		return nil
	}
	return out, walk(t.root)
}

// SupernodeCount returns the number of directory supernodes and the total
// number of pages they span.
func (t *Tree) SupernodeCount() (supernodes, pages int, err error) {
	var walk func(id pagefile.PageID) error
	walk = func(id pagefile.PageID) error {
		n, e := t.readNode(id)
		if e != nil {
			return e
		}
		if n.leaf {
			return nil
		}
		if n.isSuper() {
			supernodes++
			pages += len(n.pages)
		}
		for _, c := range n.children {
			if e := walk(c.page); e != nil {
				return e
			}
		}
		return nil
	}
	err = walk(t.root)
	return supernodes, pages, err
}
