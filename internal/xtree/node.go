package xtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/gauss-tree/gausstree/internal/pagefile"
	"github.com/gauss-tree/gausstree/internal/pfv"
	"github.com/gauss-tree/gausstree/internal/rect"
)

const (
	kindLeaf  = 1
	kindInner = 2
)

// nodeHeaderSize is kind (1) + entry count (2) + split history (4) +
// continuation page (4).
const nodeHeaderSize = 11

// childEntry is one directory entry: a child page and the minimum bounding
// rectangle of the quantile boxes in its subtree.
type childEntry struct {
	page pagefile.PageID
	box  rect.Rect
}

// node is the in-memory form of an X-tree node, which may be a supernode
// occupying several chained pages.
type node struct {
	id        pagefile.PageID
	leaf      bool
	splitHist uint32
	pages     []pagefile.PageID // the chain; pages[0] == id
	vectors   []pfv.Vector
	children  []childEntry
}

func (n *node) entryCount() int {
	if n.leaf {
		return len(n.vectors)
	}
	return len(n.children)
}

// isSuper reports whether the node currently spans more than one page.
func (n *node) isSuper() bool { return len(n.pages) > 1 }

func leafEntrySize(dim int) int { return pfv.EncodedSize(dim) }

// innerEntrySize is child page id (4) + 2d float64 bounds.
func innerEntrySize(dim int) int { return 4 + 16*dim }

// pagesNeeded returns how many pages a node with the given entry count
// requires.
func pagesNeeded(entries, perPage int) int {
	if entries == 0 {
		return 1
	}
	return (entries + perPage - 1) / perPage
}

// readNode loads a node, following supernode continuation pointers. Every
// chained page is a logical page access, also when the decoded form is
// cached.
func (t *Tree) readNode(id pagefile.PageID) (*node, error) {
	return t.readNodeCounted(id, nil)
}

// readNodeCounted is readNode with the page accesses additionally charged to
// a per-query counter.
func (t *Tree) readNodeCounted(id pagefile.PageID, c *pagefile.Counter) (*node, error) {
	t.decMu.RLock()
	n, ok := t.decoded[id]
	t.decMu.RUnlock()
	if ok {
		for _, p := range n.pages {
			if _, err := t.mgr.ReadCounted(p, c); err != nil {
				return nil, err
			}
		}
		return n, nil
	}
	n = &node{id: id}
	page := id
	first := true
	for page != pagefile.NilPage {
		buf, err := t.mgr.ReadCounted(page, c)
		if err != nil {
			return nil, err
		}
		if len(buf) < nodeHeaderSize {
			return nil, fmt.Errorf("xtree: truncated page %d", page)
		}
		kind := buf[0]
		count := int(binary.LittleEndian.Uint16(buf[1:]))
		hist := binary.LittleEndian.Uint32(buf[3:])
		cont := pagefile.PageID(binary.LittleEndian.Uint32(buf[7:]))
		if first {
			n.leaf = kind == kindLeaf
			n.splitHist = hist
			first = false
		} else if (kind == kindLeaf) != n.leaf {
			return nil, fmt.Errorf("xtree: inconsistent chain kind at page %d", page)
		}
		off := nodeHeaderSize
		if n.leaf {
			for i := 0; i < count; i++ {
				v, used, err := pfv.DecodeBinary(buf[off:], t.dim)
				if err != nil {
					return nil, fmt.Errorf("xtree: page %d entry %d: %w", page, i, err)
				}
				n.vectors = append(n.vectors, v)
				off += used
			}
		} else {
			esz := innerEntrySize(t.dim)
			for i := 0; i < count; i++ {
				if off+esz > len(buf) {
					return nil, fmt.Errorf("xtree: page %d entry %d: short page", page, i)
				}
				c := childEntry{
					page: pagefile.PageID(binary.LittleEndian.Uint32(buf[off:])),
					box: rect.Rect{
						Lo: make([]float64, t.dim),
						Hi: make([]float64, t.dim),
					},
				}
				p := off + 4
				for j := 0; j < t.dim; j++ {
					c.box.Lo[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[p:]))
					c.box.Hi[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[p+8:]))
					p += 16
				}
				n.children = append(n.children, c)
				off += esz
			}
		}
		n.pages = append(n.pages, page)
		page = cont
	}
	t.decMu.Lock()
	t.decoded[id] = n
	t.decMu.Unlock()
	return n, nil
}

// writeNode persists a node, growing or shrinking its page chain as needed.
func (t *Tree) writeNode(n *node) error {
	perPage := t.perPageLeaf
	if !n.leaf {
		perPage = t.perPageInner
	}
	need := pagesNeeded(n.entryCount(), perPage)
	for len(n.pages) < need {
		id, err := t.mgr.Allocate()
		if err != nil {
			return err
		}
		n.pages = append(n.pages, id)
	}
	for len(n.pages) > need {
		last := n.pages[len(n.pages)-1]
		if err := t.mgr.Free(last); err != nil {
			return err
		}
		n.pages = n.pages[:len(n.pages)-1]
	}

	kind := byte(kindInner)
	if n.leaf {
		kind = kindLeaf
	}
	for pi := 0; pi < need; pi++ {
		lo := pi * perPage
		hi := min(lo+perPage, n.entryCount())
		buf := make([]byte, nodeHeaderSize, t.mgr.PageSize())
		buf[0] = kind
		binary.LittleEndian.PutUint16(buf[1:], uint16(hi-lo))
		binary.LittleEndian.PutUint32(buf[3:], n.splitHist)
		cont := pagefile.NilPage
		if pi+1 < need {
			cont = n.pages[pi+1]
		}
		binary.LittleEndian.PutUint32(buf[7:], uint32(cont))
		if n.leaf {
			for _, v := range n.vectors[lo:hi] {
				buf = pfv.AppendBinary(buf, v)
			}
		} else {
			for _, c := range n.children[lo:hi] {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(c.page))
				for j := 0; j < t.dim; j++ {
					buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.box.Lo[j]))
					buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.box.Hi[j]))
				}
			}
		}
		if err := t.mgr.Write(n.pages[pi], buf); err != nil {
			return err
		}
	}
	t.decMu.Lock()
	t.decoded[n.id] = n
	t.decMu.Unlock()
	return nil
}

// computeBox returns the MBR of the node's entries (quantile boxes for
// leaves, child MBRs for directory nodes).
func (t *Tree) computeBox(n *node) rect.Rect {
	if n.leaf {
		if len(n.vectors) == 0 {
			lo := make([]float64, t.dim)
			hi := make([]float64, t.dim)
			for i := range lo {
				lo[i], hi[i] = math.Inf(1), math.Inf(-1)
			}
			return rect.Rect{Lo: lo, Hi: hi}
		}
		b := t.boxOf(n.vectors[0])
		for _, v := range n.vectors[1:] {
			b.ExtendInPlace(t.boxOf(v))
		}
		return b
	}
	if len(n.children) == 0 {
		lo := make([]float64, t.dim)
		hi := make([]float64, t.dim)
		for i := range lo {
			lo[i], hi[i] = math.Inf(1), math.Inf(-1)
		}
		return rect.Rect{Lo: lo, Hi: hi}
	}
	b := n.children[0].box.Clone()
	for _, c := range n.children[1:] {
		b.ExtendInPlace(c.box)
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
