package xtree

import (
	"fmt"
	"math"
	"sort"

	"github.com/gauss-tree/gausstree/internal/pagefile"
	"github.com/gauss-tree/gausstree/internal/pfv"
	"github.com/gauss-tree/gausstree/internal/rect"
)

// Insert adds a vector to the X-tree.
func (t *Tree) Insert(v pfv.Vector) error {
	if v.Dim() != t.dim {
		return fmt.Errorf("%w: vector dimension %d, tree dimension %d", ErrDimension, v.Dim(), t.dim)
	}
	_, sibling, err := t.insertAt(t.root, v, t.height)
	if err != nil {
		return err
	}
	t.count++
	if sibling == nil {
		return nil
	}
	// Root split: grow the tree.
	oldRoot, err := t.readNode(t.root)
	if err != nil {
		return err
	}
	newRootID, err := t.mgr.Allocate()
	if err != nil {
		return err
	}
	newRoot := &node{
		id:    newRootID,
		pages: []pagefile.PageID{newRootID},
		children: []childEntry{
			{page: oldRoot.id, box: t.computeBox(oldRoot)},
			*sibling,
		},
	}
	if err := t.writeNode(newRoot); err != nil {
		return err
	}
	t.root = newRootID
	t.height++
	return nil
}

// InsertAll inserts a batch of vectors.
func (t *Tree) InsertAll(vs []pfv.Vector) error {
	for _, v := range vs {
		if err := t.Insert(v); err != nil {
			return err
		}
	}
	return nil
}

// insertAt recursively inserts v under the node at id (level 1 = leaf).
// It returns the node's updated MBR and, if the node was split, the entry
// describing the new sibling.
func (t *Tree) insertAt(id pagefile.PageID, v pfv.Vector, level int) (rect.Rect, *childEntry, error) {
	n, err := t.readNode(id)
	if err != nil {
		return rect.Rect{}, nil, err
	}
	if n.leaf {
		n.vectors = append(n.vectors, v)
		if len(n.vectors) > t.perPageLeaf {
			return t.splitLeaf(n)
		}
		if err := t.writeNode(n); err != nil {
			return rect.Rect{}, nil, err
		}
		return t.computeBox(n), nil, nil
	}

	ci := t.chooseSubtree(n, v, level)
	childBox, sibling, err := t.insertAt(n.children[ci].page, v, level-1)
	if err != nil {
		return rect.Rect{}, nil, err
	}
	n.children[ci].box = childBox
	if sibling != nil {
		n.children = append(n.children, *sibling)
		if len(n.children) > len(n.pages)*t.perPageInner {
			if left, right, ok := t.tryDirectorySplit(n); ok {
				return left, right, nil
			}
			// No acceptable split: become (or extend) a supernode.
			// writeNode grows the page chain as required.
		}
	}
	if err := t.writeNode(n); err != nil {
		return rect.Rect{}, nil, err
	}
	return t.computeBox(n), nil, nil
}

// chooseSubtree implements the R*-tree descent criterion: for the level just
// above the leaves the child with the least overlap enlargement wins
// (restricted to the 16 least-area-enlargement candidates for cost), higher
// up the child with the least area enlargement.
func (t *Tree) chooseSubtree(n *node, v pfv.Vector, level int) int {
	vbox := t.boxOf(v)
	if level == 2 { // children are leaves
		type cand struct {
			idx int
			enl float64
		}
		cands := make([]cand, len(n.children))
		for i, c := range n.children {
			cands[i] = cand{i, c.box.Enlargement(vbox)}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].enl < cands[b].enl })
		// R* restricts the quadratic overlap test to the best candidates by
		// area enlargement; 6 keeps insertion fast at our fanouts with no
		// measurable quality loss.
		if len(cands) > 6 {
			cands = cands[:6]
		}
		best, bestOverlap, bestEnl := cands[0].idx, math.Inf(1), math.Inf(1)
		for _, c := range cands {
			grown := n.children[c.idx].box.Union(vbox)
			overlap := 0.0
			for j, o := range n.children {
				if j == c.idx {
					continue
				}
				overlap += grown.Overlap(o.box) - n.children[c.idx].box.Overlap(o.box)
			}
			if overlap < bestOverlap || (overlap == bestOverlap && c.enl < bestEnl) {
				best, bestOverlap, bestEnl = c.idx, overlap, c.enl
			}
		}
		return best
	}
	best, bestEnl, bestArea := 0, math.Inf(1), math.Inf(1)
	for i, c := range n.children {
		enl := c.box.Enlargement(vbox)
		area := c.box.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// splitLeaf performs the R* topological split on an overflowing leaf. The
// receiver keeps the left half and its pages; the new right node is
// allocated and returned as a child entry.
func (t *Tree) splitLeaf(n *node) (rect.Rect, *childEntry, error) {
	boxes := make([]rect.Rect, len(n.vectors))
	for i, v := range n.vectors {
		boxes[i] = t.boxOf(v)
	}
	axis, splitAt, order := t.topologicalSplit(boxes, t.minLeaf)
	right := &node{leaf: true, splitHist: n.splitHist | 1<<uint(axis)}
	n.splitHist |= 1 << uint(axis)

	leftV := make([]pfv.Vector, 0, splitAt)
	rightV := make([]pfv.Vector, 0, len(order)-splitAt)
	for _, i := range order[:splitAt] {
		leftV = append(leftV, n.vectors[i])
	}
	for _, i := range order[splitAt:] {
		rightV = append(rightV, n.vectors[i])
	}
	n.vectors = leftV
	right.vectors = rightV

	rightID, err := t.mgr.Allocate()
	if err != nil {
		return rect.Rect{}, nil, err
	}
	right.id = rightID
	right.pages = []pagefile.PageID{rightID}
	if err := t.writeNode(n); err != nil {
		return rect.Rect{}, nil, err
	}
	if err := t.writeNode(right); err != nil {
		return rect.Rect{}, nil, err
	}
	return t.computeBox(n), &childEntry{page: rightID, box: t.computeBox(right)}, nil
}

// tryDirectorySplit attempts to split an overflowing directory node. It
// first tries the topological (R*) split; if the two halves overlap too
// much it looks for an overlap-minimal split along a dimension from the
// node's split history; if that split would be too unbalanced the node is
// left intact (the caller turns it into a supernode) and ok is false.
func (t *Tree) tryDirectorySplit(n *node) (rect.Rect, *childEntry, bool) {
	boxes := make([]rect.Rect, len(n.children))
	for i, c := range n.children {
		boxes[i] = c.box
	}
	axis, splitAt, order := t.topologicalSplit(boxes, t.minInner)
	if t.splitOverlap(boxes, order, splitAt) > t.cfg.MaxOverlap {
		// Overlap-minimal split attempt along split-history dimensions.
		bestAxis, bestAt, bestOrder, bestOv := -1, 0, []int(nil), math.Inf(1)
		minEntries := int(math.Ceil(t.cfg.MinFanout * float64(len(boxes))))
		for d := 0; d < t.dim; d++ {
			if n.splitHist&(1<<uint(d)) == 0 {
				continue
			}
			ord := sortedByCenter(boxes, d)
			for at := minEntries; at <= len(boxes)-minEntries; at++ {
				ov := t.splitOverlap(boxes, ord, at)
				if ov < bestOv {
					bestAxis, bestAt, bestOv = d, at, ov
					bestOrder = append(bestOrder[:0], ord...)
				}
			}
		}
		if bestAxis == -1 || bestOv > t.cfg.MaxOverlap {
			return rect.Rect{}, nil, false // supernode
		}
		axis, splitAt, order = bestAxis, bestAt, bestOrder
	}

	right := &node{splitHist: n.splitHist | 1<<uint(axis)}
	n.splitHist |= 1 << uint(axis)
	leftC := make([]childEntry, 0, splitAt)
	rightC := make([]childEntry, 0, len(order)-splitAt)
	for _, i := range order[:splitAt] {
		leftC = append(leftC, n.children[i])
	}
	for _, i := range order[splitAt:] {
		rightC = append(rightC, n.children[i])
	}
	n.children = leftC
	right.children = rightC

	rightID, err := t.mgr.Allocate()
	if err != nil {
		return rect.Rect{}, nil, false
	}
	right.id = rightID
	right.pages = []pagefile.PageID{rightID}
	if err := t.writeNode(n); err != nil {
		return rect.Rect{}, nil, false
	}
	if err := t.writeNode(right); err != nil {
		return rect.Rect{}, nil, false
	}
	return t.computeBox(n), &childEntry{page: rightID, box: t.computeBox(right)}, true
}

// topologicalSplit is the R*-tree split: the axis with the smallest margin
// sum wins; along it, the distribution with the least overlap (ties: least
// total area) wins. minEntries bounds the smaller side. It returns the
// chosen axis, the split position and the entry order.
func (t *Tree) topologicalSplit(boxes []rect.Rect, minEntries int) (axis, splitAt int, order []int) {
	n := len(boxes)
	if minEntries < 1 {
		minEntries = 1
	}
	if minEntries > n/2 {
		minEntries = n / 2
	}
	bestAxis, bestMargin := 0, math.Inf(1)
	for d := 0; d < t.dim; d++ {
		ord := sortedByCenter(boxes, d)
		margin := 0.0
		for at := minEntries; at <= n-minEntries; at++ {
			l := unionOf(boxes, ord[:at])
			r := unionOf(boxes, ord[at:])
			margin += l.Margin() + r.Margin()
		}
		if margin < bestMargin {
			bestAxis, bestMargin = d, margin
		}
	}
	ord := sortedByCenter(boxes, bestAxis)
	bestAt, bestOv, bestArea := minEntries, math.Inf(1), math.Inf(1)
	for at := minEntries; at <= n-minEntries; at++ {
		l := unionOf(boxes, ord[:at])
		r := unionOf(boxes, ord[at:])
		ov := l.Overlap(r)
		area := l.Area() + r.Area()
		if ov < bestOv || (ov == bestOv && area < bestArea) {
			bestAt, bestOv, bestArea = at, ov, area
		}
	}
	return bestAxis, bestAt, ord
}

// splitOverlap returns the overlap fraction of a tentative split: the volume
// of the two halves' MBR intersection relative to the smaller MBR volume
// (degenerate volumes fall back to margin-based comparison yielding 0 or 1).
func (t *Tree) splitOverlap(boxes []rect.Rect, order []int, at int) float64 {
	l := unionOf(boxes, order[:at])
	r := unionOf(boxes, order[at:])
	inter := l.Overlap(r)
	denom := math.Min(l.Area(), r.Area())
	if denom <= 0 {
		if inter > 0 {
			return 1
		}
		if l.Intersects(r) {
			return 1 // degenerate boxes touching: treat as full overlap
		}
		return 0
	}
	return inter / denom
}

func sortedByCenter(boxes []rect.Rect, d int) []int {
	order := make([]int, len(boxes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca := boxes[order[a]].Lo[d] + boxes[order[a]].Hi[d]
		cb := boxes[order[b]].Lo[d] + boxes[order[b]].Hi[d]
		if ca != cb {
			return ca < cb
		}
		return boxes[order[a]].Lo[d] < boxes[order[b]].Lo[d]
	})
	return order
}

func unionOf(boxes []rect.Rect, idxs []int) rect.Rect {
	out := boxes[idxs[0]].Clone()
	for _, i := range idxs[1:] {
		out.ExtendInPlace(boxes[i])
	}
	return out
}
