package xtree

import (
	"fmt"
	"math"

	"github.com/gauss-tree/gausstree/internal/gaussian"
	"github.com/gauss-tree/gausstree/internal/pagefile"
	"github.com/gauss-tree/gausstree/internal/pfv"
	"github.com/gauss-tree/gausstree/internal/pqueue"
	"github.com/gauss-tree/gausstree/internal/query"
	"github.com/gauss-tree/gausstree/internal/rect"
)

// RangeSearch returns every stored vector whose quantile box intersects the
// given rectangle (the filter step of the paper's comparison method).
func (t *Tree) RangeSearch(r rect.Rect) ([]pfv.Vector, error) {
	if r.Dim() != t.dim {
		return nil, fmt.Errorf("%w: query rectangle dimension %d, tree dimension %d", ErrDimension, r.Dim(), t.dim)
	}
	var out []pfv.Vector
	err := t.walkIntersecting(t.root, r, func(v pfv.Vector) {
		out = append(out, v)
	})
	return out, err
}

func (t *Tree) walkIntersecting(id pagefile.PageID, r rect.Rect, emit func(pfv.Vector)) error {
	n, err := t.readNode(id)
	if err != nil {
		return err
	}
	if n.leaf {
		for _, v := range n.vectors {
			if t.boxOf(v).Intersects(r) {
				emit(v)
			}
		}
		return nil
	}
	for _, c := range n.children {
		if c.box.Intersects(r) {
			if err := t.walkIntersecting(c.page, r, emit); err != nil {
				return err
			}
		}
	}
	return nil
}

// KMLIQ approximates a k-most-likely identification query with the paper's
// X-tree method: filter all pfv whose 95% boxes intersect the query's box,
// then refine by computing exact joint probabilities over the candidate set.
// The Bayes denominator is taken over the candidates only, so probabilities
// are upper estimates, and objects outside the filter are false dismissals —
// exactly the approximation the paper evaluates and criticizes.
func (t *Tree) KMLIQ(q pfv.Vector, k int) ([]query.Result, error) {
	if err := t.checkQuery(q); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("xtree: k must be positive, got %d", k)
	}
	qbox := t.boxOf(q)
	top := pqueue.NewTopK[pfv.Vector](k)
	var denom gaussian.LogSum
	if err := t.walkIntersecting(t.root, qbox, func(v pfv.Vector) {
		ld := pfv.JointLogDensity(t.cfg.Combiner, v, q)
		denom.Add(ld)
		top.Offer(v, ld)
	}); err != nil {
		return nil, err
	}
	logDenom := denom.Log()
	out := make([]query.Result, 0, top.Len())
	for _, v := range top.Sorted() {
		ld := pfv.JointLogDensity(t.cfg.Combiner, v, q)
		p := math.Exp(ld - logDenom)
		out = append(out, query.Result{Vector: v, LogDensity: ld, Probability: p, ProbLow: p, ProbHigh: p})
	}
	return out, nil
}

// TIQ approximates a threshold identification query with the same
// filter-and-refine method. See KMLIQ for the approximation caveats.
func (t *Tree) TIQ(q pfv.Vector, pTheta float64) ([]query.Result, error) {
	if err := t.checkQuery(q); err != nil {
		return nil, err
	}
	if pTheta < 0 || pTheta > 1 {
		return nil, fmt.Errorf("xtree: threshold %v outside [0,1]", pTheta)
	}
	qbox := t.boxOf(q)
	var cands []pfv.Vector
	var denom gaussian.LogSum
	if err := t.walkIntersecting(t.root, qbox, func(v pfv.Vector) {
		denom.Add(pfv.JointLogDensity(t.cfg.Combiner, v, q))
		cands = append(cands, v)
	}); err != nil {
		return nil, err
	}
	logDenom := denom.Log()
	var out []query.Result
	for _, v := range cands {
		ld := pfv.JointLogDensity(t.cfg.Combiner, v, q)
		p := math.Exp(ld - logDenom)
		if p >= pTheta {
			out = append(out, query.Result{Vector: v, LogDensity: ld, Probability: p, ProbLow: p, ProbHigh: p})
		}
	}
	query.SortByProbability(out)
	return out, nil
}

func (t *Tree) checkQuery(q pfv.Vector) error {
	if q.Dim() != t.dim {
		return fmt.Errorf("%w: query dimension %d, tree dimension %d", ErrDimension, q.Dim(), t.dim)
	}
	return nil
}
