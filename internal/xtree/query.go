package xtree

import (
	"context"
	"fmt"
	"math"

	"github.com/gauss-tree/gausstree/internal/gaussian"
	"github.com/gauss-tree/gausstree/internal/pagefile"
	"github.com/gauss-tree/gausstree/internal/pfv"
	"github.com/gauss-tree/gausstree/internal/pqueue"
	"github.com/gauss-tree/gausstree/internal/query"
	"github.com/gauss-tree/gausstree/internal/rect"
)

var _ query.Engine = (*Tree)(nil)

// Name identifies the X-tree baseline in engine-agnostic reports.
func (t *Tree) Name() string { return "x-tree" }

// RangeSearch returns every stored vector whose quantile box intersects the
// given rectangle (the filter step of the paper's comparison method).
func (t *Tree) RangeSearch(r rect.Rect) ([]pfv.Vector, error) {
	if r.Dim() != t.dim {
		return nil, fmt.Errorf("%w: query rectangle dimension %d, tree dimension %d", ErrDimension, r.Dim(), t.dim)
	}
	var out []pfv.Vector
	err := t.walkIntersecting(context.Background(), nil, nil, t.root, r, func(v pfv.Vector) {
		out = append(out, v)
	})
	return out, err
}

// walkIntersecting traverses every subtree whose box intersects r, checking
// the context at each node and charging node reads to the per-query counter
// and stats. Skipping a non-intersecting subtree is what makes the filter an
// approximation, so it is recorded as early termination.
func (t *Tree) walkIntersecting(ctx context.Context, c *pagefile.Counter, stats *query.Stats, id pagefile.PageID, r rect.Rect, emit func(pfv.Vector)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n, err := t.readNodeCounted(id, c)
	if err != nil {
		return err
	}
	if stats != nil {
		stats.NodesVisited++
	}
	if n.leaf {
		for _, v := range n.vectors {
			if t.boxOf(v).Intersects(r) {
				emit(v)
			}
		}
		return nil
	}
	for _, ch := range n.children {
		if !ch.box.Intersects(r) {
			if stats != nil {
				stats.EarlyTermination = true
			}
			continue
		}
		if err := t.walkIntersecting(ctx, c, stats, ch.page, r, emit); err != nil {
			return err
		}
	}
	return nil
}

// KMLIQ approximates a k-most-likely identification query with the paper's
// X-tree method: filter all pfv whose 95% boxes intersect the query's box,
// then refine by computing exact joint probabilities over the candidate set.
// The Bayes denominator is taken over the candidates only, so probabilities
// are upper estimates (the accuracy parameter is ignored), and objects
// outside the filter are false dismissals — exactly the approximation the
// paper evaluates and criticizes.
func (t *Tree) KMLIQ(ctx context.Context, q pfv.Vector, k int, _ float64) ([]query.Result, query.Stats, error) {
	return t.kmliq(ctx, q, k, true)
}

// KMLIQRanked is the ranking-only variant of KMLIQ: the same filter walk,
// results ordered by joint density with NaN probabilities. The page cost is
// identical to KMLIQ because the filter dominates.
func (t *Tree) KMLIQRanked(ctx context.Context, q pfv.Vector, k int) ([]query.Result, query.Stats, error) {
	return t.kmliq(ctx, q, k, false)
}

func (t *Tree) kmliq(ctx context.Context, q pfv.Vector, k int, withProbs bool) ([]query.Result, query.Stats, error) {
	if err := t.checkQuery(q); err != nil {
		return nil, query.Stats{}, err
	}
	if k <= 0 {
		return nil, query.Stats{}, fmt.Errorf("%w: k must be positive, got %d", ErrInvalidArg, k)
	}
	var counter pagefile.Counter
	var stats query.Stats
	top := pqueue.NewTopK[pfv.Vector](k)
	var denom gaussian.LogSum
	err := t.walkIntersecting(ctx, &counter, &stats, t.root, t.boxOf(q), func(v pfv.Vector) {
		ld := pfv.JointLogDensity(t.cfg.Combiner, v, q)
		if withProbs {
			denom.Add(ld)
		}
		top.Offer(v, ld)
		stats.VectorsScored++
	})
	stats.PageAccesses = counter.LogicalReads()
	if err != nil {
		return nil, stats, err
	}
	logDenom := denom.Log()
	out := make([]query.Result, 0, top.Len())
	for _, v := range top.Sorted() {
		ld := pfv.JointLogDensity(t.cfg.Combiner, v, q)
		r := query.Result{
			Vector: v, LogDensity: ld,
			Probability: math.NaN(), ProbLow: math.NaN(), ProbHigh: math.NaN(),
		}
		if withProbs {
			p := math.Exp(ld - logDenom)
			r.Probability, r.ProbLow, r.ProbHigh = p, p, p
		}
		out = append(out, r)
	}
	stats.CandidatesRetained = len(out)
	return out, stats, nil
}

// TIQ approximates a threshold identification query with the same
// filter-and-refine method. See KMLIQ for the approximation caveats.
func (t *Tree) TIQ(ctx context.Context, q pfv.Vector, pTheta float64, _ float64) ([]query.Result, query.Stats, error) {
	if err := t.checkQuery(q); err != nil {
		return nil, query.Stats{}, err
	}
	if pTheta < 0 || pTheta > 1 {
		return nil, query.Stats{}, fmt.Errorf("%w: threshold %v outside [0,1]", ErrInvalidArg, pTheta)
	}
	var counter pagefile.Counter
	var stats query.Stats
	qbox := t.boxOf(q)
	var cands []pfv.Vector
	var denom gaussian.LogSum
	err := t.walkIntersecting(ctx, &counter, &stats, t.root, qbox, func(v pfv.Vector) {
		denom.Add(pfv.JointLogDensity(t.cfg.Combiner, v, q))
		cands = append(cands, v)
		stats.VectorsScored++
	})
	stats.PageAccesses = counter.LogicalReads()
	if err != nil {
		return nil, stats, err
	}
	logDenom := denom.Log()
	var out []query.Result
	for _, v := range cands {
		ld := pfv.JointLogDensity(t.cfg.Combiner, v, q)
		p := math.Exp(ld - logDenom)
		if p >= pTheta {
			out = append(out, query.Result{Vector: v, LogDensity: ld, Probability: p, ProbLow: p, ProbHigh: p})
		}
	}
	stats.CandidatesRetained = len(out)
	query.SortByProbability(out)
	return query.NonNil(out), stats, nil
}

func (t *Tree) checkQuery(q pfv.Vector) error {
	if q.Dim() != t.dim {
		return fmt.Errorf("%w: query dimension %d, tree dimension %d", ErrDimension, q.Dim(), t.dim)
	}
	return nil
}
