package dataset

import "math"

// Thin wrappers keep the sampler readable.
func sqrt(x float64) float64   { return math.Sqrt(x) }
func ln(x float64) float64     { return math.Log(x) }
func pow(x, y float64) float64 { return math.Pow(x, y) }
