// Package dataset generates the two evaluation data sets of the paper's §6
// and their identification query workloads.
//
// Data set 1 of the paper is "10,987 27-dimensional color histograms of an
// image database". The original image collection is not available, so this
// package synthesizes color-histogram-like probabilistic feature vectors: a
// Dirichlet mixture produces clustered, sparse, simplex-normalized vectors
// with the value distribution characteristics of real color histograms
// (many near-empty bins, a few dominant ones, clustered by image motif), and
// every dimension is complemented with a randomly drawn standard deviation,
// exactly as the paper describes. Data set 2 ("100,000 randomly generated
// probabilistic feature vectors in a 10-dimensional feature space") is
// generated as a clustered Gaussian mixture; the paper does not state its
// distribution, and a mild cluster structure is what makes any index —
// theirs or ours — able to beat a sequential scan. A uniform variant is
// provided for ablations.
//
// The query protocol follows §6 verbatim: a query selects a random database
// object, draws a new observed mean from the object's own Gaussian (per
// dimension), and receives freshly drawn standard deviations. The selected
// object's id is the query's ground truth.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/gauss-tree/gausstree/internal/pfv"
)

// Dataset is a generated collection of probabilistic feature vectors.
//
// Every object has a latent true feature vector; the stored pfv's mean is a
// noisy observation of it (error drawn from the stored per-feature σ), and
// queries are independent noisy re-observations of the same latent — the
// exact generative model behind Lemma 1's joint probability (two
// observations of one unknown true vector).
type Dataset struct {
	Name    string
	Vectors []pfv.Vector
	Dim     int
	// Latents holds the true feature vectors, aligned with Vectors.
	Latents [][]float64
}

// SigmaModel describes how the per-feature standard deviations of one
// observation are drawn. Following the paper's motivation (and its Figure 1
// example: O1 accurate in both features, O2 inaccurate in both, O3 and the
// query mixed), uncertainty is dominated by the per-observation conditions
// ("the circumstances in which a given data object is transformed into a
// feature vector may strongly vary"): every observation has a base quality
// level drawn from [BaseMin, BaseMax] that all its features share up to a
// multiplicative jitter, and individual features are additionally outliers
// with probability FeatureNoisyFraction (a particular feature spoiled by,
// say, rotation or illumination), drawing from [NoisyMin, NoisyMax] instead.
//
// This correlated heteroscedasticity is what conventional Euclidean search
// cannot exploit and the Gaussian uncertainty model can; the per-object
// correlation is also what makes the Gauss-tree's σ-dimension splits
// effective (poor observations separate from sharp ones, leaving tightly
// bounded nodes).
type SigmaModel struct {
	// BaseMin and BaseMax bound the per-observation base quality level.
	BaseMin, BaseMax float64
	// Jitter is the relative spread of features around the base level:
	// each feature scales the base by U(1−Jitter, 1+Jitter). Values in
	// [0, 1); 0 means all features share the base level exactly.
	Jitter float64
	// FeatureNoisyFraction is the probability that a single feature is an
	// outlier drawing from the noisy range regardless of the base level.
	FeatureNoisyFraction float64
	// NoisyMin and NoisyMax bound outlier feature deviations. Unused when
	// FeatureNoisyFraction is 0.
	NoisyMin, NoisyMax float64
}

// Validate reports whether the model is usable.
func (m SigmaModel) Validate() error {
	if m.BaseMin <= 0 || m.BaseMax < m.BaseMin {
		return fmt.Errorf("dataset: invalid base sigma range [%v,%v]", m.BaseMin, m.BaseMax)
	}
	if m.Jitter < 0 || m.Jitter >= 1 {
		return fmt.Errorf("dataset: jitter %v outside [0,1)", m.Jitter)
	}
	if m.FeatureNoisyFraction < 0 || m.FeatureNoisyFraction > 1 {
		return fmt.Errorf("dataset: feature noisy fraction %v outside [0,1]", m.FeatureNoisyFraction)
	}
	if m.FeatureNoisyFraction > 0 && (m.NoisyMin <= 0 || m.NoisyMax < m.NoisyMin) {
		return fmt.Errorf("dataset: invalid noisy sigma range [%v,%v]", m.NoisyMin, m.NoisyMax)
	}
	return nil
}

// DrawVector samples the σ vector of one observation of dim features.
func (m SigmaModel) DrawVector(rng *rand.Rand, dim int) []float64 {
	base := m.BaseMin + rng.Float64()*(m.BaseMax-m.BaseMin)
	out := make([]float64, dim)
	for j := range out {
		if rng.Float64() < m.FeatureNoisyFraction {
			out[j] = m.NoisyMin + rng.Float64()*(m.NoisyMax-m.NoisyMin)
		} else {
			out[j] = base * (1 - m.Jitter + 2*m.Jitter*rng.Float64())
		}
	}
	return out
}

// Query is one identification query: a probabilistic query vector plus the
// id of the database object it re-observes.
type Query struct {
	Vector  pfv.Vector
	TruthID uint64
}

// HistogramParams configures the Data-set-1-style generator.
type HistogramParams struct {
	// N is the number of objects (paper: 10,987).
	N int
	// Dim is the histogram resolution (paper: 27).
	Dim int
	// Clusters is the number of image-motif prototypes.
	Clusters int
	// Concentration controls how tightly objects follow their prototype
	// (larger = tighter clusters).
	Concentration float64
	// Sigma describes the per-feature uncertainty distribution, on the
	// histogram scale (bins average 1/Dim ≈ 0.037).
	Sigma SigmaModel
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultHistogramParams returns the parameters used to reproduce data set 1.
func DefaultHistogramParams() HistogramParams {
	return HistogramParams{
		N:             10987,
		Dim:           27,
		Clusters:      150,
		Concentration: 40,
		// Calibrated against the paper's Figure 6 operating point for data
		// set 1 (3-NN recall ≈ 42%, 3-MLIQ recall ≈ 98%); see cmd/tune.
		Sigma: SigmaModel{
			BaseMin:              0.002,
			BaseMax:              0.015,
			Jitter:               0.3,
			FeatureNoisyFraction: 0.12,
			NoisyMin:             0.05,
			NoisyMax:             0.15,
		},
		Seed: 1,
	}
}

// ColorHistograms generates a Data-set-1-style collection.
func ColorHistograms(p HistogramParams) (*Dataset, error) {
	if p.N <= 0 || p.Dim <= 0 || p.Clusters <= 0 {
		return nil, fmt.Errorf("dataset: invalid histogram params %+v", p)
	}
	if err := p.Sigma.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	// Sparse Dirichlet prototypes: most bins near zero, a few dominant.
	protos := make([][]float64, p.Clusters)
	for c := range protos {
		protos[c] = dirichlet(rng, p.Dim, 0.35)
	}
	vectors := make([]pfv.Vector, p.N)
	latents := make([][]float64, p.N)
	for i := range vectors {
		proto := protos[rng.Intn(p.Clusters)]
		latent := dirichletAround(rng, proto, p.Concentration)
		sigma := p.Sigma.DrawVector(rng, p.Dim)
		mean := make([]float64, p.Dim)
		for j := range sigma {
			mean[j] = latent[j] + rng.NormFloat64()*sigma[j]
		}
		latents[i] = latent
		vectors[i] = pfv.MustNew(uint64(i+1), mean, sigma)
	}
	return &Dataset{Name: "histograms", Vectors: vectors, Dim: p.Dim, Latents: latents}, nil
}

// SyntheticParams configures the Data-set-2-style generator.
type SyntheticParams struct {
	// N is the number of objects (paper: 100,000).
	N int
	// Dim is the feature dimensionality (paper: 10).
	Dim int
	// Clusters is the number of mixture components; 0 produces uniform data
	// (ablation).
	Clusters int
	// ClusterSpread is the standard deviation of objects around their
	// cluster center, on a [0,100] domain.
	ClusterSpread float64
	// Sigma describes the per-feature uncertainty distribution.
	Sigma SigmaModel
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultSyntheticParams returns the parameters used to reproduce data set 2.
func DefaultSyntheticParams() SyntheticParams {
	return SyntheticParams{
		N:             100000,
		Dim:           10,
		Clusters:      50,
		ClusterSpread: 3,
		// Calibrated against the paper's Figure 6 operating point for data
		// set 2 (3-NN recall ≈ 61%, 3-MLIQ recall ≈ 99%); see cmd/tune.
		Sigma: SigmaModel{
			BaseMin:              0.05,
			BaseMax:              1.2,
			Jitter:               0.3,
			FeatureNoisyFraction: 0.15,
			NoisyMin:             2,
			NoisyMax:             6,
		},
		Seed: 2,
	}
}

// Synthetic generates a Data-set-2-style collection.
func Synthetic(p SyntheticParams) (*Dataset, error) {
	if p.N <= 0 || p.Dim <= 0 {
		return nil, fmt.Errorf("dataset: invalid synthetic params %+v", p)
	}
	if err := p.Sigma.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	var centers [][]float64
	if p.Clusters > 0 {
		centers = make([][]float64, p.Clusters)
		for c := range centers {
			centers[c] = make([]float64, p.Dim)
			for j := range centers[c] {
				centers[c][j] = rng.Float64() * 100
			}
		}
	}
	vectors := make([]pfv.Vector, p.N)
	latents := make([][]float64, p.N)
	for i := range vectors {
		latent := make([]float64, p.Dim)
		if centers != nil {
			c := centers[rng.Intn(len(centers))]
			for j := range latent {
				latent[j] = c[j] + rng.NormFloat64()*p.ClusterSpread
			}
		} else {
			for j := range latent {
				latent[j] = rng.Float64() * 100
			}
		}
		sigma := p.Sigma.DrawVector(rng, p.Dim)
		mean := make([]float64, p.Dim)
		for j := range sigma {
			mean[j] = latent[j] + rng.NormFloat64()*sigma[j]
		}
		latents[i] = latent
		vectors[i] = pfv.MustNew(uint64(i+1), mean, sigma)
	}
	name := "synthetic-clustered"
	if p.Clusters == 0 {
		name = "synthetic-uniform"
	}
	return &Dataset{Name: name, Vectors: vectors, Dim: p.Dim, Latents: latents}, nil
}

// QueryParams configures the §6 query workload generator.
type QueryParams struct {
	// Count is the number of queries (paper: 100 for DS1, 500 for DS2).
	Count int
	// Sigma describes the freshly drawn query uncertainties. The query's
	// observed means are drawn with these σ (the measurement error of the
	// query observation), matching the generative identification model in
	// which both the stored and the query observation are independent noisy
	// measurements of the same true object.
	Sigma SigmaModel
	// Seed makes the workload deterministic.
	Seed int64
}

// MakeQueries derives an identification workload from a data set, following
// the paper's protocol: pick a random object, generate a new observed mean
// w.r.t. the corresponding Gaussian per dimension, attach freshly drawn
// standard deviations, and record the source object as ground truth. The
// fresh per-dimension σ are drawn first and the observation error is drawn
// from them, so the query's declared uncertainty describes its actual error
// — the same reading of "generated w.r.t. the corresponding Gaussian" that
// makes the stored σ of the source object describe the stored mean's error.
func MakeQueries(ds *Dataset, p QueryParams) ([]Query, error) {
	if p.Count <= 0 {
		return nil, fmt.Errorf("dataset: invalid query count %d", p.Count)
	}
	if err := p.Sigma.Validate(); err != nil {
		return nil, err
	}
	if len(ds.Vectors) == 0 {
		return nil, fmt.Errorf("dataset: empty data set")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	out := make([]Query, p.Count)
	for i := range out {
		idx := rng.Intn(len(ds.Vectors))
		src := ds.Vectors[idx]
		truth := src.Mean
		if ds.Latents != nil {
			truth = ds.Latents[idx]
		}
		sigma := p.Sigma.DrawVector(rng, ds.Dim)
		mean := make([]float64, ds.Dim)
		for j := 0; j < ds.Dim; j++ {
			mean[j] = truth[j] + rng.NormFloat64()*sigma[j]
		}
		out[i] = Query{
			Vector:  pfv.MustNew(0, mean, sigma),
			TruthID: src.ID,
		}
	}
	return out, nil
}

// dirichlet draws a symmetric Dirichlet(α) sample of the given dimension.
func dirichlet(rng *rand.Rand, dim int, alpha float64) []float64 {
	out := make([]float64, dim)
	sum := 0.0
	for i := range out {
		out[i] = gammaSample(rng, alpha)
		sum += out[i]
	}
	if sum == 0 {
		out[rng.Intn(dim)] = 1
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// dirichletAround draws Dirichlet(concentration·base + ε), i.e. a simplex
// point clustered around the base distribution.
func dirichletAround(rng *rand.Rand, base []float64, concentration float64) []float64 {
	out := make([]float64, len(base))
	sum := 0.0
	for i := range out {
		out[i] = gammaSample(rng, concentration*base[i]+0.05)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gammaSample draws Gamma(shape, 1) with the Marsaglia–Tsang method,
// boosting shapes below 1 with the standard U^(1/shape) trick.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		return 0
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) · U^(1/a)
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / (3 * math.Sqrt(d))
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u == 0 {
			continue
		}
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
