package dataset

import (
	"math"
	"math/rand"
	"testing"

	"github.com/gauss-tree/gausstree/internal/gaussian"
	"github.com/gauss-tree/gausstree/internal/pfv"
)

func TestSigmaModelValidateAndDraw(t *testing.T) {
	good := SigmaModel{
		BaseMin: 0.1, BaseMax: 0.5, Jitter: 0.3,
		FeatureNoisyFraction: 0.1, NoisyMin: 2, NoisyMax: 8,
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bads := []SigmaModel{
		{BaseMin: 0, BaseMax: 0.5},
		{BaseMin: 0.5, BaseMax: 0.1},
		{BaseMin: 0.1, BaseMax: 0.5, Jitter: -0.1},
		{BaseMin: 0.1, BaseMax: 0.5, Jitter: 1},
		{BaseMin: 0.1, BaseMax: 0.5, FeatureNoisyFraction: -0.2, NoisyMin: 2, NoisyMax: 8},
		{BaseMin: 0.1, BaseMax: 0.5, FeatureNoisyFraction: 1.2, NoisyMin: 2, NoisyMax: 8},
		{BaseMin: 0.1, BaseMax: 0.5, FeatureNoisyFraction: 0.3, NoisyMin: 0, NoisyMax: 8},
		{BaseMin: 0.1, BaseMax: 0.5, FeatureNoisyFraction: 0.3, NoisyMin: 8, NoisyMax: 2},
	}
	for i, m := range bads {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
	// Outlier-free models never need the noisy range.
	zero := SigmaModel{BaseMin: 0.1, BaseMax: 0.5, Jitter: 0.2}
	if err := zero.Validate(); err != nil {
		t.Errorf("outlier-free model rejected: %v", err)
	}

	rng := rand.New(rand.NewSource(1))
	const trials = 3000
	dim := 16
	outliers, total := 0, 0
	for i := 0; i < trials; i++ {
		sv := good.DrawVector(rng, dim)
		if len(sv) != dim {
			t.Fatalf("DrawVector length %d", len(sv))
		}
		// Recover the base level from the non-outlier median: all base
		// features lie within base·(1±Jitter) ⊂ [0.07, 0.65].
		for _, sg := range sv {
			total++
			switch {
			case sg >= good.NoisyMin && sg <= good.NoisyMax:
				outliers++
			case sg >= good.BaseMin*(1-good.Jitter) && sg <= good.BaseMax*(1+good.Jitter):
			default:
				t.Fatalf("draw %v outside both envelopes", sg)
			}
		}
	}
	if rate := float64(outliers) / float64(total); math.Abs(rate-good.FeatureNoisyFraction) > 0.02 {
		t.Errorf("outlier rate = %v, want ~%v", rate, good.FeatureNoisyFraction)
	}

	// Per-object correlation: within one vector, non-outlier features share
	// the base level, so their max/min ratio is bounded by (1+J)/(1-J).
	for i := 0; i < 200; i++ {
		sv := SigmaModel{BaseMin: 0.1, BaseMax: 10, Jitter: 0.2}.DrawVector(rng, 12)
		lo, hi := sv[0], sv[0]
		for _, x := range sv {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if hi/lo > 1.2/0.8+1e-9 {
			t.Fatalf("within-vector sigma ratio %v exceeds jitter envelope", hi/lo)
		}
	}
}

func TestColorHistogramsShape(t *testing.T) {
	p := DefaultHistogramParams()
	p.N = 500 // keep the test fast
	ds, err := ColorHistograms(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Vectors) != 500 || ds.Dim != 27 || len(ds.Latents) != 500 {
		t.Fatalf("got %d vectors of dim %d with %d latents", len(ds.Vectors), ds.Dim, len(ds.Latents))
	}
	for i, v := range ds.Vectors {
		// The latent is on the simplex; the stored mean is the latent plus
		// per-feature observation noise of the declared magnitude.
		latSum := 0.0
		for j, l := range ds.Latents[i] {
			if l < 0 {
				t.Fatalf("latent bin %d negative: %v", j, l)
			}
			latSum += l
		}
		if math.Abs(latSum-1) > 1e-9 {
			t.Fatalf("latent sums to %v, want 1 (simplex)", latSum)
		}
		for j := range v.Mean {
			dev := math.Abs(v.Mean[j] - ds.Latents[i][j])
			if dev > 6*v.Sigma[j] {
				t.Fatalf("observation noise %v is %v sigmas", dev, dev/v.Sigma[j])
			}
		}
	}
}

func TestColorHistogramsSparseAndClustered(t *testing.T) {
	p := DefaultHistogramParams()
	p.N = 400
	ds, err := ColorHistograms(p)
	if err != nil {
		t.Fatal(err)
	}
	// Color-histogram character: a sizable share of near-empty bins in the
	// latent histograms.
	small, total := 0, 0
	for _, lat := range ds.Latents {
		for _, m := range lat {
			total++
			if m < 0.01 {
				small++
			}
		}
	}
	if frac := float64(small) / float64(total); frac < 0.3 {
		t.Errorf("only %.0f%% near-empty bins; histograms should be sparse", frac*100)
	}
}

func TestColorHistogramsDeterministic(t *testing.T) {
	p := DefaultHistogramParams()
	p.N = 50
	a, _ := ColorHistograms(p)
	b, _ := ColorHistograms(p)
	for i := range a.Vectors {
		if !a.Vectors[i].Equal(b.Vectors[i]) {
			t.Fatal("same seed must reproduce the same data")
		}
	}
	p.Seed = 99
	c, _ := ColorHistograms(p)
	same := true
	for i := range a.Vectors {
		if !a.Vectors[i].Equal(c.Vectors[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestSyntheticShape(t *testing.T) {
	p := DefaultSyntheticParams()
	p.N = 1000
	ds, err := Synthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Vectors) != 1000 || ds.Dim != 10 {
		t.Fatalf("got %d vectors of dim %d", len(ds.Vectors), ds.Dim)
	}
	for i, v := range ds.Vectors {
		for j := range v.Mean {
			okBase := v.Sigma[j] >= p.Sigma.BaseMin*(1-p.Sigma.Jitter) &&
				v.Sigma[j] <= p.Sigma.BaseMax*(1+p.Sigma.Jitter)
			okNoisy := v.Sigma[j] >= p.Sigma.NoisyMin && v.Sigma[j] <= p.Sigma.NoisyMax
			if !okBase && !okNoisy {
				t.Fatalf("sigma %v outside both envelopes", v.Sigma[j])
			}
			dev := math.Abs(v.Mean[j] - ds.Latents[i][j])
			if dev > 6*v.Sigma[j] {
				t.Fatalf("observation noise %v is %v sigmas", dev, dev/v.Sigma[j])
			}
		}
	}
}

func TestSyntheticUniformVariant(t *testing.T) {
	p := DefaultSyntheticParams()
	p.N = 500
	p.Clusters = 0
	ds, err := Synthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "synthetic-uniform" {
		t.Errorf("name = %q", ds.Name)
	}
	// Uniform latents should fill the domain roughly evenly: mean ≈ 50.
	sum := 0.0
	for _, lat := range ds.Latents {
		sum += lat[0]
	}
	if m := sum / float64(len(ds.Latents)); m < 40 || m > 60 {
		t.Errorf("uniform mean = %v, want ≈50", m)
	}
}

func TestParamValidation(t *testing.T) {
	hp := DefaultHistogramParams()
	hp.N = 0
	if _, err := ColorHistograms(hp); err == nil {
		t.Error("N=0 should fail")
	}
	hp = DefaultHistogramParams()
	hp.Sigma.BaseMin = 0
	if _, err := ColorHistograms(hp); err == nil {
		t.Error("sigma 0 should fail")
	}
	sp := DefaultSyntheticParams()
	sp.Sigma.NoisyMax = sp.Sigma.NoisyMin / 2
	if _, err := Synthetic(sp); err == nil {
		t.Error("reversed sigma range should fail")
	}
	ds := &Dataset{Vectors: []pfv.Vector{pfv.MustNew(1, []float64{0}, []float64{1})}, Dim: 1}
	if _, err := MakeQueries(ds, QueryParams{Count: 0, Sigma: SigmaModel{BaseMin: 1, BaseMax: 2}}); err == nil {
		t.Error("count 0 should fail")
	}
	if _, err := MakeQueries(&Dataset{}, QueryParams{Count: 1, Sigma: SigmaModel{BaseMin: 1, BaseMax: 2}}); err == nil {
		t.Error("empty data set should fail")
	}
}

func TestMakeQueriesProtocol(t *testing.T) {
	p := DefaultSyntheticParams()
	p.N = 2000
	ds, _ := Synthetic(p)
	qs, err := MakeQueries(ds, QueryParams{Count: 300, Sigma: p.Sigma, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 300 {
		t.Fatalf("got %d queries", len(qs))
	}
	latentByID := map[uint64][]float64{}
	for i, v := range ds.Vectors {
		latentByID[v.ID] = ds.Latents[i]
	}
	// Each query re-observes its source latent with its own declared σ:
	// normalized residuals must be ≈ N(0,1).
	sumSq, n := 0.0, 0
	for _, q := range qs {
		lat, ok := latentByID[q.TruthID]
		if !ok {
			t.Fatalf("truth id %d not in data set", q.TruthID)
		}
		for j := range lat {
			z := (q.Vector.Mean[j] - lat[j]) / q.Vector.Sigma[j]
			sumSq += z * z
			n++
		}
	}
	std := math.Sqrt(sumSq / float64(n))
	if std < 0.9 || std > 1.1 {
		t.Errorf("normalized query residual std = %v, want ≈1", std)
	}
}

func TestQueriesIdentifiableByPosterior(t *testing.T) {
	// End-to-end sanity: on a small data set, the Bayesian posterior should
	// identify the query's source object most of the time, dramatically
	// better than chance.
	p := DefaultSyntheticParams()
	p.N = 500
	ds, _ := Synthetic(p)
	qs, _ := MakeQueries(ds, QueryParams{Count: 60, Sigma: p.Sigma, Seed: 8})
	hits := 0
	for _, q := range qs {
		ps := pfv.Posterior(gaussian.CombineAdditive, ds.Vectors, q.Vector)
		best := 0
		for i := range ps {
			if ps[i] > ps[best] {
				best = i
			}
		}
		if ds.Vectors[best].ID == q.TruthID {
			hits++
		}
	}
	if hits < 45 {
		t.Errorf("posterior identified only %d/60 queries", hits)
	}
}

func TestGammaSamplerMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, shape := range []float64{0.3, 0.5, 1, 2.5, 10} {
		const n = 60000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := gammaSample(rng, shape)
			if x < 0 {
				t.Fatalf("negative gamma sample %v", x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		// Gamma(shape,1): mean = shape, var = shape.
		if math.Abs(mean-shape) > 0.05*shape+0.02 {
			t.Errorf("shape %v: mean %v", shape, mean)
		}
		if math.Abs(variance-shape) > 0.1*shape+0.05 {
			t.Errorf("shape %v: variance %v", shape, variance)
		}
	}
	if gammaSample(rng, 0) != 0 || gammaSample(rng, -1) != 0 {
		t.Error("non-positive shapes must return 0")
	}
}

func TestDirichletOnSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		d := dirichlet(rng, 8, 0.4)
		sum := 0.0
		for _, x := range d {
			if x < 0 {
				t.Fatal("negative component")
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("dirichlet sums to %v", sum)
		}
	}
}
