package pqueue

import "sort"

// TopK keeps the k elements with the highest priority seen so far. It is the
// candidate list of the k-MLIQ algorithm (paper Figure 4): a bounded min-heap
// whose root is the current k-th best score, which doubles as the pruning
// bound against the active-page queue.
type TopK[T any] struct {
	k    int
	heap *Queue[T]
}

// NewTopK returns a collector for the k best-scoring elements. k must be
// positive; NewTopK panics otherwise because a zero-sized result set makes
// every query degenerate.
func NewTopK[T any](k int) *TopK[T] {
	if k <= 0 {
		panic("pqueue: TopK requires k > 0")
	}
	return &TopK[T]{k: k, heap: NewMin[T]()}
}

// Reset reconfigures the collector for a new capacity k and drops every
// collected element while retaining the heap's backing array — the reuse
// hook for pooled per-query collectors. Like NewTopK it panics on k <= 0.
func (t *TopK[T]) Reset(k int) {
	if k <= 0 {
		panic("pqueue: TopK requires k > 0")
	}
	t.k = k
	t.heap.Clear()
}

// Offer considers an element for inclusion. It reports whether the element
// was kept (queue not yet full, or better than the current k-th best).
func (t *TopK[T]) Offer(value T, prio float64) bool {
	if t.heap.Len() < t.k {
		t.heap.Push(value, prio)
		return true
	}
	if _, worst, _ := t.heap.Peek(); prio > worst {
		t.heap.Pop()
		t.heap.Push(value, prio)
		return true
	}
	return false
}

// Full reports whether k elements have been collected.
func (t *TopK[T]) Full() bool { return t.heap.Len() >= t.k }

// Len returns the number of collected elements (≤ k).
func (t *TopK[T]) Len() int { return t.heap.Len() }

// K returns the configured capacity.
func (t *TopK[T]) K() int { return t.k }

// Bound returns the current k-th best priority, the score every unexplored
// element must beat to enter the result. Until the collector is full there
// is no bound yet and it returns ok=false (rather than a −Inf sentinel), so
// callers cannot prune prematurely.
func (t *TopK[T]) Bound() (prio float64, ok bool) {
	if t.heap.Len() < t.k {
		return 0, false
	}
	_, worst, _ := t.heap.Peek()
	return worst, true
}

// Items invokes fn for every collected element in unspecified order.
func (t *TopK[T]) Items(fn func(value T, prio float64)) { t.heap.Items(fn) }

// Sorted drains the collector and returns its elements ordered from best
// (highest priority) to worst. The collector is empty afterwards.
func (t *TopK[T]) Sorted() []T {
	type scored struct {
		v T
		p float64
	}
	tmp := make([]scored, 0, t.heap.Len())
	for {
		v, p, ok := t.heap.Pop()
		if !ok {
			break
		}
		tmp = append(tmp, scored{v, p})
	}
	sort.SliceStable(tmp, func(i, j int) bool { return tmp[i].p > tmp[j].p })
	out := make([]T, len(tmp))
	for i, s := range tmp {
		out[i] = s.v
	}
	return out
}
