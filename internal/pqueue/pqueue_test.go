package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMaxQueueOrdering(t *testing.T) {
	q := NewMax[string]()
	q.Push("b", 2)
	q.Push("a", 1)
	q.Push("d", 4)
	q.Push("c", 3)
	want := []string{"d", "c", "b", "a"}
	for i, w := range want {
		v, p, ok := q.Pop()
		if !ok {
			t.Fatalf("pop %d: empty", i)
		}
		if v != w {
			t.Errorf("pop %d = %q (prio %v), want %q", i, v, p, w)
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Error("queue should be empty")
	}
}

func TestMinQueueOrdering(t *testing.T) {
	q := NewMin[int]()
	for _, p := range []float64{5, 1, 3, 2, 4} {
		q.Push(int(p), p)
	}
	for want := 1; want <= 5; want++ {
		v, _, ok := q.Pop()
		if !ok || v != want {
			t.Fatalf("pop = %d,%v want %d", v, ok, want)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	q := NewMax[int]()
	q.Push(7, 7)
	q.Push(9, 9)
	v, p, ok := q.Peek()
	if !ok || v != 9 || p != 9 {
		t.Fatalf("peek = %v,%v,%v", v, p, ok)
	}
	if q.Len() != 2 {
		t.Errorf("Len after peek = %d", q.Len())
	}
	if v2, _, _ := q.Pop(); v2 != 9 {
		t.Errorf("pop after peek = %d", v2)
	}
}

func TestEmptyQueue(t *testing.T) {
	q := NewMin[string]()
	if _, _, ok := q.Peek(); ok {
		t.Error("peek on empty should report !ok")
	}
	if _, _, ok := q.Pop(); ok {
		t.Error("pop on empty should report !ok")
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d", q.Len())
	}
}

func TestClearRetainsUsability(t *testing.T) {
	q := NewMax[int]()
	for i := 0; i < 10; i++ {
		q.Push(i, float64(i))
	}
	q.Clear()
	if q.Len() != 0 {
		t.Fatalf("Len after clear = %d", q.Len())
	}
	q.Push(42, 1)
	if v, _, _ := q.Pop(); v != 42 {
		t.Error("queue unusable after Clear")
	}
}

func TestItemsVisitsAll(t *testing.T) {
	q := NewMin[int]()
	seen := map[int]bool{}
	for i := 0; i < 20; i++ {
		q.Push(i, rand.Float64())
	}
	q.Items(func(v int, _ float64) { seen[v] = true })
	if len(seen) != 20 {
		t.Errorf("Items visited %d elements, want 20", len(seen))
	}
	if q.Len() != 20 {
		t.Errorf("Items must not consume the queue; Len = %d", q.Len())
	}
}

func TestQueueHeapProperty(t *testing.T) {
	// Pushing random values then draining must yield a sorted sequence.
	prop := func(raw []float64) bool {
		q := NewMax[float64]()
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if v != v { // NaN priorities are unsupported by contract
				continue
			}
			q.Push(v, v)
			vals = append(vals, v)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
		for _, want := range vals {
			got, _, ok := q.Pop()
			if !ok || got != want {
				return false
			}
		}
		_, _, ok := q.Pop()
		return !ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Error(err)
	}
}

func TestInterleavedPushPop(t *testing.T) {
	q := NewMin[int]()
	rng := rand.New(rand.NewSource(17))
	mirror := []float64{}
	for step := 0; step < 5000; step++ {
		if rng.Float64() < 0.6 || len(mirror) == 0 {
			p := rng.NormFloat64()
			q.Push(step, p)
			mirror = append(mirror, p)
		} else {
			_, p, ok := q.Pop()
			if !ok {
				t.Fatal("unexpected empty queue")
			}
			// p must equal the minimum of the mirror.
			minI := 0
			for i, m := range mirror {
				if m < mirror[minI] {
					minI = i
				}
			}
			if p != mirror[minI] {
				t.Fatalf("step %d: popped %v, want %v", step, p, mirror[minI])
			}
			mirror = append(mirror[:minI], mirror[minI+1:]...)
		}
	}
}

func TestTopKBasics(t *testing.T) {
	tk := NewTopK[string](3)
	if tk.Full() {
		t.Error("new TopK should not be full")
	}
	if _, ok := tk.Bound(); ok {
		t.Error("Bound must be unavailable until full")
	}
	tk.Offer("a", 1)
	tk.Offer("b", 5)
	tk.Offer("c", 3)
	if !tk.Full() || tk.Len() != 3 {
		t.Fatalf("Full=%v Len=%d", tk.Full(), tk.Len())
	}
	if b, ok := tk.Bound(); !ok || b != 1 {
		t.Errorf("Bound = %v,%v want 1", b, ok)
	}
	if kept := tk.Offer("d", 0.5); kept {
		t.Error("worse element must be rejected")
	}
	if kept := tk.Offer("e", 4); !kept {
		t.Error("better element must be kept")
	}
	got := tk.Sorted()
	want := []string{"b", "e", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Sorted[%d] = %q, want %q (%v)", i, got[i], want[i], got)
		}
	}
	if tk.Len() != 0 {
		t.Error("Sorted should drain the collector")
	}
}

func TestTopKAgainstSort(t *testing.T) {
	prop := func(raw []float64, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		tk := NewTopK[float64](k)
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if v != v {
				continue
			}
			tk.Offer(v, v)
			vals = append(vals, v)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
		if len(vals) > k {
			vals = vals[:k]
		}
		got := tk.Sorted()
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(23))}); err != nil {
		t.Error(err)
	}
}

func TestTopKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTopK(0) should panic")
		}
	}()
	NewTopK[int](0)
}

func TestTopKItems(t *testing.T) {
	tk := NewTopK[int](2)
	tk.Offer(1, 1)
	tk.Offer(2, 2)
	tk.Offer(3, 3)
	sum := 0
	tk.Items(func(v int, _ float64) { sum += v })
	if sum != 5 { // 2 and 3 survive
		t.Errorf("Items sum = %d, want 5", sum)
	}
}

func BenchmarkQueuePushPop(b *testing.B) {
	q := NewMax[int]()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(i, rng.Float64())
		if q.Len() > 1024 {
			q.Pop()
		}
	}
}

func BenchmarkTopKOffer(b *testing.B) {
	tk := NewTopK[int](10)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Offer(i, rng.Float64())
	}
}

// TestTopKReset covers the pooled-collector reuse hook: Reset must drop
// collected elements, retain correctness for a different k, and keep
// panicking on invalid capacities.
func TestTopKReset(t *testing.T) {
	tk := NewTopK[string](2)
	tk.Offer("a", 1)
	tk.Offer("b", 2)
	tk.Reset(3)
	if tk.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", tk.Len())
	}
	if tk.K() != 3 {
		t.Fatalf("K after Reset = %d, want 3", tk.K())
	}
	if _, ok := tk.Bound(); ok {
		t.Error("reset collector must not report a bound")
	}
	for i, s := range []string{"x", "y", "z", "w"} {
		tk.Offer(s, float64(i))
	}
	got := tk.Sorted()
	if len(got) != 3 || got[0] != "w" || got[1] != "z" || got[2] != "y" {
		t.Errorf("Sorted after reuse = %v", got)
	}

	defer func() {
		if recover() == nil {
			t.Error("Reset(0) should panic")
		}
	}()
	tk.Reset(0)
}

// TestQueueClearReuse verifies Clear retains capacity while zeroing entries,
// the discipline the pooled per-query queues rely on.
func TestQueueClearReuse(t *testing.T) {
	q := NewMin[int]()
	for i := 0; i < 100; i++ {
		q.Push(i, float64(i))
	}
	q.Clear()
	if q.Len() != 0 {
		t.Fatalf("Len after Clear = %d", q.Len())
	}
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 100; i++ {
			q.Push(i, float64(100-i))
		}
		q.Clear()
	})
	if allocs != 0 {
		t.Errorf("reused queue allocated %.1f objects per cycle, want 0", allocs)
	}
}
