// Package pqueue provides the binary-heap priority queues used by every
// query engine in this repository: the max-queue of active Gauss-tree nodes
// of the Hjaltason/Samet best-first traversal, the bounded top-k candidate
// heap of k-MLIQ, and the threshold-query candidate set.
package pqueue

// Queue is a binary-heap priority queue over values of type T with float64
// priorities. The zero value is not usable; construct with NewMax or NewMin.
type Queue[T any] struct {
	items []entry[T]
	max   bool
}

type entry[T any] struct {
	value T
	prio  float64
}

// NewMax returns a queue whose Pop yields the highest-priority element first.
func NewMax[T any]() *Queue[T] { return &Queue[T]{max: true} }

// NewMin returns a queue whose Pop yields the lowest-priority element first.
func NewMin[T any]() *Queue[T] { return &Queue[T]{} }

// Len returns the number of queued elements.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push inserts value with the given priority.
func (q *Queue[T]) Push(value T, prio float64) {
	q.items = append(q.items, entry[T]{value: value, prio: prio})
	q.siftUp(len(q.items) - 1)
}

// Peek returns the next element and its priority without removing it.
// ok is false when the queue is empty.
func (q *Queue[T]) Peek() (value T, prio float64, ok bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, 0, false
	}
	return q.items[0].value, q.items[0].prio, true
}

// Pop removes and returns the next element and its priority.
// ok is false when the queue is empty.
func (q *Queue[T]) Pop() (value T, prio float64, ok bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, 0, false
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[last] = entry[T]{} // release for GC
	q.items = q.items[:last]
	if len(q.items) > 0 {
		q.siftDown(0)
	}
	return top.value, top.prio, true
}

// Clear empties the queue, retaining allocated capacity.
func (q *Queue[T]) Clear() {
	for i := range q.items {
		q.items[i] = entry[T]{}
	}
	q.items = q.items[:0]
}

// Items invokes fn for every queued element in unspecified (heap) order.
// It must not mutate the queue from within fn.
func (q *Queue[T]) Items(fn func(value T, prio float64)) {
	for _, e := range q.items {
		fn(e.value, e.prio)
	}
}

func (q *Queue[T]) before(a, b float64) bool {
	if q.max {
		return a > b
	}
	return a < b
}

func (q *Queue[T]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.before(q.items[i].prio, q.items[parent].prio) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue[T]) siftDown(i int) {
	n := len(q.items)
	for {
		best := i
		if l := 2*i + 1; l < n && q.before(q.items[l].prio, q.items[best].prio) {
			best = l
		}
		if r := 2*i + 2; r < n && q.before(q.items[r].prio, q.items[best].prio) {
			best = r
		}
		if best == i {
			return
		}
		q.items[i], q.items[best] = q.items[best], q.items[i]
		i = best
	}
}
