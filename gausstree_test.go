package gausstree_test

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	gausstree "github.com/gauss-tree/gausstree"
)

func randomWorld(rng *rand.Rand, n, dim int) []gausstree.Vector {
	centers := make([][]float64, 6)
	for i := range centers {
		centers[i] = make([]float64, dim)
		for j := range centers[i] {
			centers[i][j] = rng.Float64() * 100
		}
	}
	out := make([]gausstree.Vector, n)
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		mean := make([]float64, dim)
		sigma := make([]float64, dim)
		base := rng.Float64()*1.5 + 0.05
		for j := range mean {
			sigma[j] = base * (0.7 + 0.6*rng.Float64())
			mean[j] = c[j] + rng.NormFloat64()*2
		}
		out[i] = gausstree.MustVector(uint64(i+1), mean, sigma)
	}
	return out
}

func TestPublicAPIQuickstart(t *testing.T) {
	tree, err := gausstree.New(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if err := tree.Insert(gausstree.MustVector(1, []float64{1, 2}, []float64{0.1, 0.2})); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(gausstree.MustVector(2, []float64{4, 0.5}, []float64{0.3, 0.1})); err != nil {
		t.Fatal(err)
	}
	q := gausstree.MustVector(0, []float64{1.1, 1.9}, []float64{0.2, 0.2})
	matches, err := tree.KMostLikely(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].Vector.ID != 1 {
		t.Fatalf("matches = %+v", matches)
	}
	if matches[0].Probability < 0.99 {
		t.Errorf("probability = %v, want ≈1", matches[0].Probability)
	}
}

func TestPublicMatchesPosterior(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vs := randomWorld(rng, 400, 3)
	tree, err := gausstree.New(3)
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if err := tree.BulkLoad(vs); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		src := vs[rng.Intn(len(vs))]
		q := gausstree.MustVector(0,
			[]float64{src.Mean[0] + 0.1, src.Mean[1] - 0.1, src.Mean[2]},
			[]float64{0.3, 0.3, 0.3})
		ps := gausstree.Posterior(gausstree.CombineAdditive, vs, q)
		bestIdx := 0
		for i := range ps {
			if ps[i] > ps[bestIdx] {
				bestIdx = i
			}
		}
		got, err := tree.KMostLikely(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got[0].Vector.ID != vs[bestIdx].ID {
			t.Errorf("trial %d: tree %d vs posterior %d", trial, got[0].Vector.ID, vs[bestIdx].ID)
		}
		if math.Abs(got[0].Probability-ps[bestIdx]) > 1e-5 {
			t.Errorf("trial %d: p %v vs %v", trial, got[0].Probability, ps[bestIdx])
		}
	}
}

func TestThresholdMatchesPosteriorProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(2))}
	prop := func(seed int64, thresholdRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		vs := randomWorld(rng, rng.Intn(150)+20, 2)
		tree, err := gausstree.New(2, gausstree.Options{PageSize: 1024})
		if err != nil {
			return false
		}
		defer tree.Close()
		if err := tree.BulkLoad(vs); err != nil {
			return false
		}
		src := vs[rng.Intn(len(vs))]
		q := gausstree.MustVector(0,
			[]float64{src.Mean[0] + rng.NormFloat64()*0.2, src.Mean[1] + rng.NormFloat64()*0.2},
			[]float64{0.2 + rng.Float64(), 0.2 + rng.Float64()})
		pTheta := 0.05 + float64(thresholdRaw%90)/100

		ps := gausstree.Posterior(gausstree.CombineAdditive, vs, q)
		want := map[uint64]bool{}
		for i, p := range ps {
			if p >= pTheta {
				want[vs[i].ID] = true
			}
		}
		got, err := tree.Threshold(q, pTheta)
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for _, m := range got {
			if !want[m.Vector.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestProbabilitySumProperty(t *testing.T) {
	// Paper §4 property 1: the probabilities of all retrieved objects of a
	// TIQ or k-MLIQ cannot exceed 100%.
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(3))}
	prop := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		vs := randomWorld(rng, rng.Intn(200)+10, 2)
		tree, err := gausstree.New(2, gausstree.Options{PageSize: 1024})
		if err != nil {
			return false
		}
		defer tree.Close()
		if err := tree.BulkLoad(vs); err != nil {
			return false
		}
		q := gausstree.MustVector(0, []float64{rng.Float64() * 100, rng.Float64() * 100},
			[]float64{0.5, 0.5})
		k := int(kRaw%10) + 1
		ms, err := tree.KMostLikely(q, k)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, m := range ms {
			if m.Probability < -1e-9 || m.Probability > 1+1e-9 {
				return false
			}
			sum += m.Probability
		}
		return sum <= 1+1e-6
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestDeleteAndLen(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vs := randomWorld(rng, 300, 2)
	tree, _ := gausstree.New(2, gausstree.Options{PageSize: 1024})
	defer tree.Close()
	if _, err := tree.InsertAll(vs); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 300 {
		t.Fatalf("Len = %d", tree.Len())
	}
	ok, err := tree.Delete(vs[10])
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if tree.Len() != 299 {
		t.Errorf("Len after delete = %d", tree.Len())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Error(err)
	}
	seen := 0
	tree.ForEach(func(gausstree.Vector) error { seen++; return nil })
	if seen != 299 {
		t.Errorf("ForEach visited %d", seen)
	}
}

func TestConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vs := randomWorld(rng, 500, 3)
	tree, _ := gausstree.New(3)
	defer tree.Close()
	if err := tree.BulkLoad(vs); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 30; i++ {
				src := vs[r.Intn(len(vs))]
				q := gausstree.MustVector(0, src.Mean, src.Sigma)
				if _, err := tree.KMostLikely(q, 3); err != nil {
					errs <- err
					return
				}
				if _, err := tree.Threshold(q, 0.5); err != nil {
					errs <- err
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestConcurrentMixedLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vs := randomWorld(rng, 300, 2)
	tree, _ := gausstree.New(2, gausstree.Options{PageSize: 2048})
	defer tree.Close()
	if _, err := tree.InsertAll(vs[:200]); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	// One writer inserting, several readers querying concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, v := range vs[200:] {
			if err := tree.Insert(v); err != nil {
				errs <- err
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				src := vs[r.Intn(200)]
				if _, err := tree.KMostLikelyRanked(gausstree.MustVector(0, src.Mean, src.Sigma), 2); err != nil {
					errs <- err
					return
				}
			}
		}(int64(g + 10))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if tree.Len() != 300 {
		t.Errorf("Len = %d", tree.Len())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestFileBackedTree(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.gtree")
	tree, err := gausstree.New(2, gausstree.Options{Path: path, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	vs := randomWorld(rng, 100, 2)
	if err := tree.BulkLoad(vs); err != nil {
		t.Fatal(err)
	}
	q := gausstree.MustVector(0, vs[5].Mean, vs[5].Sigma)
	ms, err := tree.KMostLikely(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].Vector.ID != vs[5].ID {
		t.Errorf("file-backed self query = %d", ms[0].Vector.ID)
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPersistenceRoundTrip is the round-trip conformance check of the
// durable storage engine: build an index at a path, run all three query
// types, Close, Open the same path in a fresh Tree, and require
// byte-identical results plus matching geometry.
func TestPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "roundtrip.gtree")
	tree, err := gausstree.New(3, gausstree.Options{Path: path, PageSize: 2048, Combiner: gausstree.CombineConvolution})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	vs := randomWorld(rng, 400, 3)
	if err := tree.BulkLoad(vs[:300]); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.InsertAll(vs[300:]); err != nil {
		t.Fatal(err)
	}
	for _, v := range vs[:25] {
		if ok, err := tree.Delete(v); err != nil || !ok {
			t.Fatalf("delete: ok=%v err=%v", ok, err)
		}
	}

	queries := make([]gausstree.Vector, 8)
	for i := range queries {
		src := vs[30+i*17]
		queries[i] = gausstree.MustVector(0, src.Mean, src.Sigma)
	}
	type answers struct {
		kmliq, ranked, tiq []gausstree.Match
	}
	ask := func(tr *gausstree.Tree, q gausstree.Vector) answers {
		t.Helper()
		var a answers
		var err error
		if a.kmliq, err = tr.KMostLikely(q, 5); err != nil {
			t.Fatal(err)
		}
		if a.ranked, err = tr.KMostLikelyRanked(q, 5); err != nil {
			t.Fatal(err)
		}
		if a.tiq, err = tr.Threshold(q, 0.05); err != nil {
			t.Fatal(err)
		}
		return a
	}
	// Bit-identical float comparison that treats NaN (ranked queries carry
	// NaN probabilities) as equal to itself.
	eqF := func(a, b float64) bool {
		return a == b || (math.IsNaN(a) && math.IsNaN(b))
	}
	sameMatches := func(kind string, a, b []gausstree.Match) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d results after reopen", kind, len(a), len(b))
		}
		for i := range a {
			identical := a[i].Vector.ID == b[i].Vector.ID &&
				eqF(a[i].LogDensity, b[i].LogDensity) &&
				eqF(a[i].Probability, b[i].Probability) &&
				eqF(a[i].ProbLow, b[i].ProbLow) &&
				eqF(a[i].ProbHigh, b[i].ProbHigh)
			if !identical {
				t.Errorf("%s result %d differs after reopen: %+v vs %+v", kind, i, a[i], b[i])
			}
		}
	}
	before := make([]answers, len(queries))
	for i, q := range queries {
		before[i] = ask(tree, q)
	}
	wantLen, wantDim, wantHeight := tree.Len(), tree.Dim(), tree.Height()
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := gausstree.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != wantLen || re.Dim() != wantDim || re.Height() != wantHeight {
		t.Errorf("reopened Len/Dim/Height = %d/%d/%d, want %d/%d/%d",
			re.Len(), re.Dim(), re.Height(), wantLen, wantDim, wantHeight)
	}
	if err := re.CheckInvariants(); err != nil {
		t.Errorf("reopened invariants: %v", err)
	}
	for i, q := range queries {
		after := ask(re, q)
		sameMatches("k-MLIQ", before[i].kmliq, after.kmliq)
		sameMatches("ranked", before[i].ranked, after.ranked)
		sameMatches("TIQ", before[i].tiq, after.tiq)
	}
	if err := re.Sync(); err != nil {
		t.Errorf("Sync on reopened tree: %v", err)
	}
}

// TestNewRejectsExistingIndex: New must never clobber a persisted index.
func TestNewRejectsExistingIndex(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keep.gtree")
	tree, err := gausstree.New(2, gausstree.Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(gausstree.MustVector(1, []float64{1, 2}, []float64{0.1, 0.1})); err != nil {
		t.Fatal(err)
	}
	tree.Close()
	if _, err := gausstree.New(2, gausstree.Options{Path: path}); err == nil {
		t.Fatal("New over an existing index should be rejected")
	}
	// The original index is untouched and still opens.
	re, err := gausstree.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 1 {
		t.Errorf("index damaged by rejected New: Len = %d", re.Len())
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := gausstree.Open(filepath.Join(t.TempDir(), "nope.gtree")); err == nil {
		t.Error("opening a missing index should fail")
	}
}

func TestClosedTreeOperations(t *testing.T) {
	tree, _ := gausstree.New(2)
	tree.Close()
	v := gausstree.MustVector(1, []float64{1, 1}, []float64{1, 1})
	if err := tree.Insert(v); err != gausstree.ErrClosed {
		t.Errorf("Insert after close: %v", err)
	}
	if _, err := tree.KMostLikely(v, 1); err != gausstree.ErrClosed {
		t.Errorf("query after close: %v", err)
	}
	if _, err := tree.Delete(v); err != gausstree.ErrClosed {
		t.Errorf("delete after close: %v", err)
	}
	if _, err := tree.Stats(); err != gausstree.ErrClosed {
		t.Errorf("Stats after close: %v", err)
	}
	if err := tree.ResetStats(); err != gausstree.ErrClosed {
		t.Errorf("ResetStats after close: %v", err)
	}
	if err := tree.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestRankedVsRefinedConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	vs := randomWorld(rng, 600, 3)
	tree, _ := gausstree.New(3)
	defer tree.Close()
	tree.BulkLoad(vs)
	for trial := 0; trial < 10; trial++ {
		src := vs[rng.Intn(len(vs))]
		q := gausstree.MustVector(0, src.Mean, src.Sigma)
		ranked, err := tree.KMostLikelyRanked(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		refined, err := tree.KMostLikely(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		rankedIDs := ids(ranked)
		refinedIDs := ids(refined)
		sort.Slice(rankedIDs, func(a, b int) bool { return rankedIDs[a] < rankedIDs[b] })
		sort.Slice(refinedIDs, func(a, b int) bool { return refinedIDs[a] < refinedIDs[b] })
		for i := range rankedIDs {
			if rankedIDs[i] != refinedIDs[i] {
				t.Fatalf("trial %d: ranked set %v vs refined set %v", trial, rankedIDs, refinedIDs)
			}
		}
		if !math.IsNaN(ranked[0].Probability) {
			t.Error("ranked matches should carry NaN probabilities")
		}
	}
}

func ids(ms []gausstree.Match) []uint64 {
	out := make([]uint64, len(ms))
	for i, m := range ms {
		out[i] = m.Vector.ID
	}
	return out
}
