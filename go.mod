module github.com/gauss-tree/gausstree

go 1.24
