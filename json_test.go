package gausstree_test

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	gausstree "github.com/gauss-tree/gausstree"
)

// TestVectorJSONRoundTrip proves the stable wire encoding of a vector:
// lowercase keys, exact float64 round-trip, validated decode.
func TestVectorJSONRoundTrip(t *testing.T) {
	v := gausstree.MustVector(42, []float64{1.25, -3.0000000001, 0}, []float64{0.1, 2.5, 0.0625})
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"id":42`, `"mean":[`, `"sigma":[`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("encoding %s lacks %s", data, key)
		}
	}
	var back gausstree.Vector
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(v) {
		t.Errorf("round trip changed the vector: %+v -> %+v", v, back)
	}
}

// TestVectorJSONRejectsInvalid proves decoding enforces the pfv invariants:
// a vector that New would refuse cannot enter through JSON either.
func TestVectorJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`{"id":1,"mean":[1,2],"sigma":[0.1]}`,   // length mismatch
		`{"id":1,"mean":[],"sigma":[]}`,         // empty
		`{"id":1,"mean":[1],"sigma":[0]}`,       // zero sigma
		`{"id":1,"mean":[1],"sigma":[-0.5]}`,    // negative sigma
		`{"id":1,"mean":["x"],"sigma":[0.1]}`,   // non-numeric
		`{"id":1,"mean":[1e999],"sigma":[0.1]}`, // overflow to +Inf
	}
	for _, raw := range cases {
		var v gausstree.Vector
		if err := json.Unmarshal([]byte(raw), &v); err == nil {
			t.Errorf("decoded invalid vector %s into %+v", raw, v)
		}
	}
}

// TestMatchJSONRoundTrip proves matches survive JSON exactly — including the
// NaN probabilities of ranked queries, which encode as null and decode back
// to NaN instead of poisoning the document.
func TestMatchJSONRoundTrip(t *testing.T) {
	certified := gausstree.Match{
		Vector:      gausstree.MustVector(7, []float64{1, 2}, []float64{0.1, 0.2}),
		Probability: 0.8125,
		ProbLow:     0.8120000000000001,
		ProbHigh:    0.8129999999999999,
		LogDensity:  -3.25,
	}
	data, err := json.Marshal(certified)
	if err != nil {
		t.Fatal(err)
	}
	var back gausstree.Match
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Probability != certified.Probability || back.ProbLow != certified.ProbLow ||
		back.ProbHigh != certified.ProbHigh || back.LogDensity != certified.LogDensity ||
		!back.Vector.Equal(certified.Vector) {
		t.Errorf("round trip changed the match: %+v -> %+v", certified, back)
	}

	ranked := certified
	ranked.Probability = math.NaN()
	ranked.ProbLow = math.NaN()
	ranked.ProbHigh = math.NaN()
	data, err = json.Marshal(ranked)
	if err != nil {
		t.Fatalf("marshalling NaN probabilities: %v", err)
	}
	if !strings.Contains(string(data), `"probability":null`) {
		t.Errorf("NaN probability did not encode as null: %s", data)
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(back.Probability) || !math.IsNaN(back.ProbLow) || !math.IsNaN(back.ProbHigh) {
		t.Errorf("null probabilities did not decode to NaN: %+v", back)
	}
	if back.LogDensity != ranked.LogDensity {
		t.Errorf("log density changed: %v -> %v", back.LogDensity, ranked.LogDensity)
	}

	// ±Inf (extreme log-density underflow) must survive distinguishably,
	// not collapse into NaN.
	underflow := certified
	underflow.LogDensity = math.Inf(-1)
	data, err = json.Marshal(underflow)
	if err != nil {
		t.Fatalf("marshalling -Inf log density: %v", err)
	}
	if !strings.Contains(string(data), `"log_density":"-Inf"`) {
		t.Errorf("-Inf log density encoded as %s", data)
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(back.LogDensity, -1) {
		t.Errorf("-Inf log density decoded to %v", back.LogDensity)
	}
}

// TestMatchSliceJSON proves a query's match slice serializes as a JSON array
// ([] when empty — the serving layer's nil-vs-empty contract).
func TestMatchSliceJSON(t *testing.T) {
	data, err := json.Marshal([]gausstree.Match{})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "[]" {
		t.Errorf("empty match slice encodes as %s, want []", data)
	}
}
