package gausstree

import (
	"context"
	"fmt"
	"math"
	"time"

	"github.com/gauss-tree/gausstree/internal/core"
	"github.com/gauss-tree/gausstree/internal/pfv"
)

// IngestOptions switch a Tree into online merge-ingest mode (FROSS-style
// continuous ingestion): instead of letting a stream of repeated
// observations grow the tree without bound, Insert first probes for the
// most likely already-stored Gaussian and, when it is within MergeDistance,
// folds the new observation into it by moment matching — the stored object
// keeps its id, its mean moves toward the observation and its σ absorbs
// both measurement spreads, weighted by how many observations were merged
// so far. Observations with no near-duplicate insert normally.
//
// This keeps the index size proportional to the number of distinct objects
// rather than the number of observations, which is what makes a sustained
// sensor feed (see examples/sensornet) indexable at all.
type IngestOptions struct {
	// MergeDistance is the merge threshold on the normalized Mahalanobis
	// distance d between an observation and its most likely stored
	// Gaussian, d² = mean over dimensions of (μ₁ᵢ−μ₂ᵢ)²/(σ₁ᵢ²+σ₂ᵢ²).
	// d ≤ MergeDistance merges; larger inserts. Must be > 0. A value
	// around 1–3 merges observations that are statistically
	// indistinguishable given both uncertainties.
	MergeDistance float64
	// TTL, when > 0, marks stored objects whose last observation is older
	// than TTL as expired; SweepExpired deletes them. Zero disables decay.
	TTL time.Duration
}

// IngestStats are cumulative counters of merge-ingest mode; see
// Tree.IngestStats.
type IngestStats struct {
	// Inserted counts observations stored as new objects.
	Inserted uint64
	// Merged counts observations folded into an existing Gaussian.
	Merged uint64
	// Swept counts objects removed by SweepExpired TTL decay.
	Swept uint64
}

// ingestEntry is the in-memory bookkeeping of one stored object in
// merge-ingest mode: its current stored parameters (needed to Replace and
// Delete by exact vector), the number of observations merged into it, and
// the last observation time for TTL decay.
type ingestEntry struct {
	vec    Vector
	weight float64
	seen   time.Time
}

// ingester implements merge-or-insert. All its state is guarded by the
// owning Tree's writer mutex — every method is called with it held.
type ingester struct {
	opts    IngestOptions
	entries map[uint64]*ingestEntry
	stats   IngestStats
}

func newIngester(opts IngestOptions) (*ingester, error) {
	if !(opts.MergeDistance > 0) || math.IsInf(opts.MergeDistance, 0) {
		return nil, fmt.Errorf("%w: IngestOptions.MergeDistance must be a positive finite number, got %v", ErrInvalidOptions, opts.MergeDistance)
	}
	if opts.TTL < 0 {
		return nil, fmt.Errorf("%w: IngestOptions.TTL must be >= 0, got %v", ErrInvalidOptions, opts.TTL)
	}
	return &ingester{opts: opts, entries: make(map[uint64]*ingestEntry)}, nil
}

// seed rebuilds the bookkeeping from the stored vectors (after Open or
// BulkLoad). Pre-existing objects start with weight 1 — their merge history
// is not persisted — and a fresh TTL clock.
func (g *ingester) seed(tr *core.Tree) error {
	now := time.Now()
	g.entries = make(map[uint64]*ingestEntry, tr.Len())
	return tr.ForEach(func(v pfv.Vector) error {
		g.entries[v.ID] = &ingestEntry{vec: v, weight: 1, seen: now}
		return nil
	})
}

// insert merges v into its most likely stored near-duplicate or inserts it.
// The context bounds the near-duplicate probe (a k=1 likelihood query); the
// mutation itself is not cancellable once it starts.
func (g *ingester) insert(ctx context.Context, tr *core.Tree, v Vector) error {
	res, _, err := tr.KMLIQRanked(ctx, v, 1)
	if err != nil {
		return err
	}
	if len(res) == 1 {
		stored := res[0].Vector
		if normMahalanobisSq(stored, v) <= g.opts.MergeDistance*g.opts.MergeDistance {
			return g.merge(tr, stored, v)
		}
	}
	if err := tr.Insert(v); err != nil {
		return err
	}
	// Merge-ingest treats ids as object identities: a re-used id rebinds
	// the bookkeeping to the latest stored copy.
	g.entries[v.ID] = &ingestEntry{vec: v, weight: 1, seen: time.Now()}
	g.stats.Inserted++
	return nil
}

// merge folds observation obs into the stored Gaussian and replaces it
// in-place in the tree (one logged, snapshot-published mutation).
func (g *ingester) merge(tr *core.Tree, stored, obs Vector) error {
	e := g.entries[stored.ID]
	if e == nil {
		// Stored object predates this ingester's view (shouldn't happen
		// after seed, but tolerate): adopt it with weight 1.
		e = &ingestEntry{vec: stored, weight: 1}
		g.entries[stored.ID] = e
	}
	merged, err := mergeGaussians(stored, obs, e.weight)
	if err != nil {
		return err
	}
	ok, err := tr.Replace(stored, merged)
	if err != nil {
		return err
	}
	if !ok {
		// The probed vector is gone (stale bookkeeping); store the
		// observation as a fresh object instead.
		if err := tr.Insert(obs); err != nil {
			return err
		}
		g.entries[obs.ID] = &ingestEntry{vec: obs, weight: 1, seen: time.Now()}
		g.stats.Inserted++
		return nil
	}
	e.vec = merged
	e.weight++
	e.seen = time.Now()
	g.stats.Merged++
	return nil
}

// forget drops the bookkeeping of a deleted object.
func (g *ingester) forget(id uint64) {
	delete(g.entries, id)
}

// normMahalanobisSq is the squared normalized Mahalanobis distance between
// two probabilistic feature vectors: the mean over dimensions of
// (μ₁ᵢ−μ₂ᵢ)²/(σ₁ᵢ²+σ₂ᵢ²). Dividing by the summed variances makes the
// threshold a unitless "how many combined standard deviations apart"
// measure; the mean (not sum) over dimensions keeps one threshold value
// meaningful across dimensionalities.
func normMahalanobisSq(a, b Vector) float64 {
	dim := a.Dim()
	var sum float64
	for i := 0; i < dim; i++ {
		d := a.Mean[i] - b.Mean[i]
		sum += d * d / (a.Sigma[i]*a.Sigma[i] + b.Sigma[i]*b.Sigma[i])
	}
	return sum / float64(dim)
}

// mergeGaussians moment-matches the mixture of a stored Gaussian carrying
// weight w and one new observation (weight 1): the merged Gaussian has the
// mixture's exact mean and variance,
//
//	μ = (w·μs + μn) / (w+1)
//	σ² = (w·(σs²+μs²) + (σn²+μn²)) / (w+1) − μ²
//
// per dimension. The variance absorbs both the component spreads and the
// distance between the means, so repeated merging never understates
// uncertainty. The stored id is kept.
func mergeGaussians(stored, obs Vector, w float64) (Vector, error) {
	dim := stored.Dim()
	wTot := w + 1
	mean := make([]float64, dim)
	sigma := make([]float64, dim)
	for i := 0; i < dim; i++ {
		ms, mn := stored.Mean[i], obs.Mean[i]
		vs := stored.Sigma[i] * stored.Sigma[i]
		vn := obs.Sigma[i] * obs.Sigma[i]
		mu := (w*ms + mn) / wTot
		v := (w*(vs+ms*ms)+(vn+mn*mn))/wTot - mu*mu
		if !(v > 0) {
			// Guard against floating-point cancellation when both
			// components nearly coincide: fall back to the tighter of the
			// two component variances.
			v = math.Min(vs, vn)
		}
		mean[i] = mu
		sigma[i] = math.Sqrt(v)
	}
	return pfv.New(stored.ID, mean, sigma)
}

// SweepExpired removes every stored object whose last observation is older
// than IngestOptions.TTL and returns how many were removed. It is a no-op
// (0, nil) when the tree is not in merge-ingest mode or TTL is 0. Like all
// mutations it runs under the writer lock without blocking readers, and
// returns once the deletions are durable.
func (t *Tree) SweepExpired() (int, error) {
	t.mu.Lock()
	st := t.st.Load()
	if st == nil {
		t.mu.Unlock()
		return 0, ErrClosed
	}
	if t.ing == nil || t.ing.opts.TTL <= 0 {
		t.mu.Unlock()
		return 0, nil
	}
	cutoff := time.Now().Add(-t.ing.opts.TTL)
	removed := 0
	var err error
	for id, e := range t.ing.entries {
		if !e.seen.Before(cutoff) {
			continue
		}
		var found bool
		found, err = st.tree.Delete(e.vec)
		if err != nil {
			break
		}
		delete(t.ing.entries, id)
		if found {
			removed++
			t.ing.stats.Swept++
		}
	}
	t.mu.Unlock()
	if err != nil {
		return removed, err
	}
	return removed, st.tree.WaitDurable()
}

// IngestStats reports the cumulative merge-ingest counters; ok is false
// when the tree is not in merge-ingest mode.
func (t *Tree) IngestStats() (stats IngestStats, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ing == nil {
		return IngestStats{}, false
	}
	return t.ing.stats, true
}
