package gausstree_test

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"testing"

	gausstree "github.com/gauss-tree/gausstree"
)

// queryable is the query surface shared by Tree and Sharded, letting the
// validation and nil-vs-empty matrices run over both public index types.
type queryable interface {
	KMostLikely(q gausstree.Vector, k int) ([]gausstree.Match, error)
	KMostLikelyRanked(q gausstree.Vector, k int) ([]gausstree.Match, error)
	Threshold(q gausstree.Vector, pTheta float64) ([]gausstree.Match, error)
	Close() error
}

func bothIndexTypes(t *testing.T, vs []gausstree.Vector, dim int) map[string]queryable {
	t.Helper()
	tree, err := gausstree.New(dim)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := gausstree.NewSharded(dim, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) > 0 {
		if err := tree.BulkLoad(vs); err != nil {
			t.Fatal(err)
		}
		if err := sharded.BulkLoad(vs); err != nil {
			t.Fatal(err)
		}
	}
	return map[string]queryable{"Tree": tree, "Sharded": sharded}
}

// TestInvalidQueryMatrix is the satellite acceptance matrix: k < 1, pTheta
// outside (0, 1] and dimension mismatches must uniformly return a wrapped
// ErrInvalidQuery from every query method of both Tree and Sharded.
func TestInvalidQueryMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vs := randomWorld(rng, 200, 2)
	q := gausstree.MustVector(0, []float64{1, 2}, []float64{0.1, 0.1})
	wrongDim := gausstree.MustVector(0, []float64{1, 2, 3}, []float64{0.1, 0.1, 0.1})

	for name, idx := range bothIndexTypes(t, vs, 2) {
		t.Run(name, func(t *testing.T) {
			cases := []struct {
				name string
				run  func() ([]gausstree.Match, error)
			}{
				{"KMostLikely k=0", func() ([]gausstree.Match, error) { return idx.KMostLikely(q, 0) }},
				{"KMostLikely k=-2", func() ([]gausstree.Match, error) { return idx.KMostLikely(q, -2) }},
				{"KMostLikelyRanked k=0", func() ([]gausstree.Match, error) { return idx.KMostLikelyRanked(q, 0) }},
				{"Threshold p=0", func() ([]gausstree.Match, error) { return idx.Threshold(q, 0) }},
				{"Threshold p=-0.1", func() ([]gausstree.Match, error) { return idx.Threshold(q, -0.1) }},
				{"Threshold p=1.01", func() ([]gausstree.Match, error) { return idx.Threshold(q, 1.01) }},
				{"Threshold p=NaN", func() ([]gausstree.Match, error) { return idx.Threshold(q, math.NaN()) }},
				{"KMostLikely wrong dim", func() ([]gausstree.Match, error) { return idx.KMostLikely(wrongDim, 1) }},
				{"KMostLikelyRanked wrong dim", func() ([]gausstree.Match, error) { return idx.KMostLikelyRanked(wrongDim, 1) }},
				{"Threshold wrong dim", func() ([]gausstree.Match, error) { return idx.Threshold(wrongDim, 0.5) }},
				{"KMostLikely zero vector", func() ([]gausstree.Match, error) { return idx.KMostLikely(gausstree.Vector{}, 1) }},
			}
			for _, tc := range cases {
				ms, err := tc.run()
				if !errors.Is(err, gausstree.ErrInvalidQuery) {
					t.Errorf("%s: err = %v, want ErrInvalidQuery", tc.name, err)
				}
				if len(ms) != 0 {
					t.Errorf("%s: returned %d matches alongside the error", tc.name, len(ms))
				}
			}
			// Threshold p=1 is the valid boundary of (0, 1].
			if _, err := idx.Threshold(q, 1); err != nil {
				t.Errorf("Threshold p=1: %v, want nil (1 is inside (0,1])", err)
			}
		})
	}
}

// TestEmptyResultsNeverNil is the nil-vs-empty satellite on the public
// types: queries that match nothing return []Match{} (which serializes to
// the JSON array [], not null) from both Tree and Sharded — for empty
// indexes and for TIQ thresholds nothing reaches.
func TestEmptyResultsNeverNil(t *testing.T) {
	q2 := gausstree.MustVector(0, []float64{1, 2}, []float64{0.1, 0.1})

	assertEmptyNonNil := func(t *testing.T, name string, ms []gausstree.Match, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ms == nil {
			t.Errorf("%s: nil matches, want []Match{}", name)
			return
		}
		if len(ms) != 0 {
			t.Errorf("%s: %d matches, want none", name, len(ms))
		}
		data, jerr := json.Marshal(ms)
		if jerr != nil {
			t.Fatalf("%s: %v", name, jerr)
		}
		if string(data) != "[]" {
			t.Errorf("%s: serializes to %s, want []", name, data)
		}
	}

	t.Run("empty index", func(t *testing.T) {
		for name, idx := range bothIndexTypes(t, nil, 2) {
			ms, err := idx.KMostLikely(q2, 3)
			assertEmptyNonNil(t, name+" KMostLikely", ms, err)
			ms, err = idx.KMostLikelyRanked(q2, 3)
			assertEmptyNonNil(t, name+" KMostLikelyRanked", ms, err)
			ms, err = idx.Threshold(q2, 0.5)
			assertEmptyNonNil(t, name+" Threshold", ms, err)
			idx.Close()
		}
	})

	t.Run("threshold nothing reaches", func(t *testing.T) {
		// Two clusters of near-identical objects: every posterior is ~1/n
		// of its cluster, far below 0.9, so the TIQ answer set is empty.
		var vs []gausstree.Vector
		for i := 0; i < 16; i++ {
			vs = append(vs,
				gausstree.MustVector(uint64(2*i+1), []float64{1, 1}, []float64{0.5, 0.5}),
				gausstree.MustVector(uint64(2*i+2), []float64{1.01, 0.99}, []float64{0.5, 0.5}),
			)
		}
		for name, idx := range bothIndexTypes(t, vs, 2) {
			ms, err := idx.Threshold(gausstree.MustVector(0, []float64{1, 1}, []float64{0.3, 0.3}), 0.9)
			assertEmptyNonNil(t, name+" Threshold(0.9)", ms, err)
			idx.Close()
		}
	})
}
