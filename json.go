package gausstree

import (
	"encoding/json"
	"fmt"
	"math"
)

// nullableFloat carries a float64 across JSON, which has no number encoding
// for non-finite values: NaN marshals as null (and null unmarshals back to
// NaN), while ±Inf marshal as the strings "+Inf"/"-Inf" so they survive the
// round trip distinguishably — a joint log density that underflowed to -Inf
// must not come back as NaN. Ranked k-MLIQ results legitimately carry NaN
// probabilities (the basic §5.2.1 algorithm never computes them), so the
// network layer must round-trip them without erroring the whole document.
type nullableFloat float64

func (f nullableFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte("null"), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

func (f *nullableFloat) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case "null":
		*f = nullableFloat(math.NaN())
		return nil
	case `"+Inf"`:
		*f = nullableFloat(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = nullableFloat(math.Inf(-1))
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*f = nullableFloat(v)
	return nil
}

// jsonMatch is the stable wire encoding of a Match. Probability fields use
// the nullable encoding because ranked queries report NaN there; LogDensity
// uses it too so extreme underflow (-Inf) round-trips instead of producing
// invalid JSON.
type jsonMatch struct {
	Vector      Vector        `json:"vector"`
	Probability nullableFloat `json:"probability"`
	ProbLow     nullableFloat `json:"prob_low"`
	ProbHigh    nullableFloat `json:"prob_high"`
	LogDensity  nullableFloat `json:"log_density"`
}

// MarshalJSON encodes the match with stable lowercase keys; NaN (ranked
// queries) and infinite values encode as null.
func (m Match) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonMatch{
		Vector:      m.Vector,
		Probability: nullableFloat(m.Probability),
		ProbLow:     nullableFloat(m.ProbLow),
		ProbHigh:    nullableFloat(m.ProbHigh),
		LogDensity:  nullableFloat(m.LogDensity),
	})
}

// UnmarshalJSON decodes a match; null probability fields decode to NaN.
func (m *Match) UnmarshalJSON(data []byte) error {
	jm := jsonMatch{
		Probability: nullableFloat(math.NaN()),
		ProbLow:     nullableFloat(math.NaN()),
		ProbHigh:    nullableFloat(math.NaN()),
		LogDensity:  nullableFloat(math.NaN()),
	}
	if err := json.Unmarshal(data, &jm); err != nil {
		return fmt.Errorf("gausstree: decoding match: %w", err)
	}
	*m = Match{
		Vector:      jm.Vector,
		Probability: float64(jm.Probability),
		ProbLow:     float64(jm.ProbLow),
		ProbHigh:    float64(jm.ProbHigh),
		LogDensity:  float64(jm.LogDensity),
	}
	return nil
}
