// Benchmarks regenerating the paper's figures at reduced scale, one
// benchmark per table/figure panel plus the DESIGN.md ablations. Use
// cmd/gaussbench for full-scale paper-sized runs; these testing.B harnesses
// keep `go test -bench=.` to a few minutes while exercising the identical
// code paths. Custom metrics: pages/query is the paper's "page accesses".
package gausstree_test

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	gausstree "github.com/gauss-tree/gausstree"
	"github.com/gauss-tree/gausstree/internal/dataset"
	"github.com/gauss-tree/gausstree/internal/eval"
	"github.com/gauss-tree/gausstree/internal/gaussian"
	"github.com/gauss-tree/gausstree/internal/pagefile"
	"github.com/gauss-tree/gausstree/internal/pfv"
	"github.com/gauss-tree/gausstree/internal/query"
	"github.com/gauss-tree/gausstree/internal/scan"
	"github.com/gauss-tree/gausstree/internal/shard"
	"github.com/gauss-tree/gausstree/internal/vafile"

	"github.com/gauss-tree/gausstree/internal/core"
)

// benchDS1N / benchDS2N are the reduced bench scales (paper: 10987/100000).
const (
	benchDS1N = 3000
	benchDS2N = 10000
	benchQ    = 50
)

type world struct {
	ds *dataset.Dataset
	qs []dataset.Query
	e  *eval.Engines
}

var (
	ds1Once, ds2Once sync.Once
	ds1W, ds2W       world
)

func benchDS1(b *testing.B) *world {
	b.Helper()
	ds1Once.Do(func() {
		p := dataset.DefaultHistogramParams()
		p.N = benchDS1N
		ds, err := dataset.ColorHistograms(p)
		if err != nil {
			panic(err)
		}
		qs, err := dataset.MakeQueries(ds, dataset.QueryParams{Count: benchQ, Sigma: p.Sigma, Seed: 101})
		if err != nil {
			panic(err)
		}
		e, err := eval.Build(ds, eval.Setup{})
		if err != nil {
			panic(err)
		}
		ds1W = world{ds, qs, e}
	})
	return &ds1W
}

func benchDS2(b *testing.B) *world {
	b.Helper()
	ds2Once.Do(func() {
		p := dataset.DefaultSyntheticParams()
		p.N = benchDS2N
		ds, err := dataset.Synthetic(p)
		if err != nil {
			panic(err)
		}
		qs, err := dataset.MakeQueries(ds, dataset.QueryParams{Count: benchQ, Sigma: p.Sigma, Seed: 102})
		if err != nil {
			panic(err)
		}
		e, err := eval.Build(ds, eval.Setup{})
		if err != nil {
			panic(err)
		}
		ds2W = world{ds, qs, e}
	})
	return &ds2W
}

// BenchmarkFigure1Posterior regenerates the §3.1 worked example (E1).
func BenchmarkFigure1Posterior(b *testing.B) {
	q := pfv.MustNew(0, []float64{0, 0}, []float64{0.0617, 0.9401})
	db := []pfv.Vector{
		pfv.MustNew(1, []float64{1.1503, 1.0088}, []float64{0.3579, 0.2864}),
		pfv.MustNew(2, []float64{1.8674, 0.6274}, []float64{0.8130, 1.8051}),
		pfv.MustNew(3, []float64{1.3597, 1.0857}, []float64{1.3154, 0.1790}),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ps := pfv.Posterior(gaussian.CombineAdditive, db, q)
		if ps[2] < 0.7 {
			b.Fatal("posterior drifted")
		}
	}
}

// benchFig6 measures one Figure 6 panel: 27-NN on means plus 27-MLIQ on the
// Gauss-tree per query (the harness computes all multipliers from one run).
func benchFig6(b *testing.B, w *world) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := w.qs[i%len(w.qs)]
		if _, err := w.e.Scan.NearestNeighbors(q.Vector, 27); err != nil {
			b.Fatal(err)
		}
		if _, _, err := w.e.Tree.KMLIQRanked(context.Background(), q.Vector, 27); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6DS1 regenerates Figure 6(a) per-query work (E2).
func BenchmarkFig6DS1(b *testing.B) { benchFig6(b, benchDS1(b)) }

// BenchmarkFig6DS2 regenerates Figure 6(b) per-query work (E3).
func BenchmarkFig6DS2(b *testing.B) { benchFig6(b, benchDS2(b)) }

// benchFig7 runs one engine × query-type cell of Figure 7 and reports the
// paper's page-access metric.
func benchFig7(b *testing.B, mgr *pagefile.Manager, run func(q pfv.Vector) error, qs []dataset.Query) {
	b.Helper()
	mgr.ResetStats()
	mgr.DropCache()
	start := mgr.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(qs[i%len(qs)].Vector); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	delta := mgr.Stats().Sub(start)
	b.ReportMetric(float64(delta.LogicalReads)/float64(b.N), "pages/query")
}

func fig7Cells(b *testing.B, w *world) {
	kinds := []struct {
		name   string
		thresh float64 // <0 means ranked 1-MLIQ
	}{
		{"MLIQ", -1},
		{"TIQ08", 0.8},
		{"TIQ02", 0.2},
	}
	ctx := context.Background()
	for _, eng := range w.e.All() {
		for _, kind := range kinds {
			eng, kind := eng, kind
			b.Run(eng.Label+"/"+kind.name, func(b *testing.B) {
				benchFig7(b, eng.Mgr, func(q pfv.Vector) error {
					if kind.thresh < 0 {
						_, _, err := eng.Engine.KMLIQRanked(ctx, q, 1)
						return err
					}
					_, _, err := eng.Engine.TIQ(ctx, q, kind.thresh, 0)
					return err
				}, w.qs)
			})
		}
	}
}

// BenchmarkFig7DS1 regenerates the Figure 7 top row (E4): all engines and
// query types on the histogram data set.
func BenchmarkFig7DS1(b *testing.B) { fig7Cells(b, benchDS1(b)) }

// BenchmarkFig7DS2 regenerates the Figure 7 bottom row (E5).
func BenchmarkFig7DS2(b *testing.B) { fig7Cells(b, benchDS2(b)) }

// BenchmarkAblationCombiner compares the paper's additive σ-combination with
// the exact convolution rule (A1).
func BenchmarkAblationCombiner(b *testing.B) {
	w := benchDS2(b)
	for _, comb := range []gaussian.Combiner{gaussian.CombineAdditive, gaussian.CombineConvolution} {
		comb := comb
		b.Run(comb.String(), func(b *testing.B) {
			mgr, err := pagefile.NewManager(pagefile.NewMemBackend(8192), 8192)
			if err != nil {
				b.Fatal(err)
			}
			tr, err := core.New(mgr, w.ds.Dim, core.Config{Combiner: comb})
			if err != nil {
				b.Fatal(err)
			}
			if err := tr.BulkLoad(w.ds.Vectors); err != nil {
				b.Fatal(err)
			}
			benchFig7(b, mgr, func(q pfv.Vector) error {
				_, _, err := tr.KMLIQRanked(context.Background(), q, 1)
				return err
			}, w.qs)
		})
	}
}

// BenchmarkAblationSplit compares the split objectives (A2).
func BenchmarkAblationSplit(b *testing.B) {
	w := benchDS2(b)
	for _, split := range []core.SplitObjective{core.SplitHullIntegral, core.SplitHullIntegralSum, core.SplitVolume} {
		split := split
		b.Run(split.String(), func(b *testing.B) {
			mgr, err := pagefile.NewManager(pagefile.NewMemBackend(8192), 8192)
			if err != nil {
				b.Fatal(err)
			}
			tr, err := core.New(mgr, w.ds.Dim, core.Config{Split: split})
			if err != nil {
				b.Fatal(err)
			}
			if err := tr.BulkLoad(w.ds.Vectors); err != nil {
				b.Fatal(err)
			}
			benchFig7(b, mgr, func(q pfv.Vector) error {
				_, _, err := tr.KMLIQRanked(context.Background(), q, 1)
				return err
			}, w.qs)
		})
	}
}

// BenchmarkAblationIntegral compares the erf-exact hull integral with the
// paper's degree-5 polynomial sigmoid approximation (A3).
func BenchmarkAblationIntegral(b *testing.B) {
	mu := gaussian.Interval{Lo: -1, Hi: 2}
	sigma := gaussian.Interval{Lo: 0.3, Hi: 1.7}
	b.Run("erf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gaussian.HullIntegralOn(mu, sigma, -6, 6, gaussian.StdCDF)
		}
	})
	b.Run("poly5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gaussian.HullIntegralOn(mu, sigma, -6, 6, gaussian.StdCDFPoly5)
		}
	})
	b.Run("closed-form", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gaussian.HullIntegral(mu, sigma)
		}
	})
}

// BenchmarkVAFile measures the future-work VA-file filter (A4).
func BenchmarkVAFile(b *testing.B) {
	w := benchDS2(b)
	mgr, err := pagefile.NewManager(pagefile.NewMemBackend(8192), 8192)
	if err != nil {
		b.Fatal(err)
	}
	data, err := scan.Create(mgr, w.ds.Dim, gaussian.CombineAdditive)
	if err != nil {
		b.Fatal(err)
	}
	if err := data.AppendAll(w.ds.Vectors); err != nil {
		b.Fatal(err)
	}
	va, err := vafile.Build(mgr, data, gaussian.CombineAdditive)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("KMLIQ", func(b *testing.B) {
		benchFig7(b, mgr, func(q pfv.Vector) error {
			_, _, err := va.KMLIQ(context.Background(), q, 1, 0)
			return err
		}, w.qs)
	})
	b.Run("TIQ08", func(b *testing.B) {
		benchFig7(b, mgr, func(q pfv.Vector) error {
			_, _, err := va.TIQ(context.Background(), q, 0.8, 0)
			return err
		}, w.qs)
	})
}

// BenchmarkBuild compares construction paths at bench scale.
func BenchmarkBuild(b *testing.B) {
	w := benchDS2(b)
	b.Run("BulkLoad", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mgr, _ := pagefile.NewManager(pagefile.NewMemBackend(8192), 8192)
			tr, _ := core.New(mgr, w.ds.Dim, core.Config{})
			if err := tr.BulkLoad(w.ds.Vectors); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("InsertAll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mgr, _ := pagefile.NewManager(pagefile.NewMemBackend(8192), 8192)
			tr, _ := core.New(mgr, w.ds.Dim, core.Config{})
			if _, err := tr.InsertAll(w.ds.Vectors); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKMLIQRefined measures the §5.2.2 probability-refinement variant
// against the ranked algorithm (context for Figure 7's MLIQ column).
func BenchmarkKMLIQRefined(b *testing.B) {
	w := benchDS2(b)
	b.Run("ranked", func(b *testing.B) {
		benchFig7(b, w.e.TreeMgr, func(q pfv.Vector) error {
			_, _, err := w.e.Tree.KMLIQRanked(context.Background(), q, 1)
			return err
		}, w.qs)
	})
	b.Run("accuracy-1e2", func(b *testing.B) {
		benchFig7(b, w.e.TreeMgr, func(q pfv.Vector) error {
			_, _, err := w.e.Tree.KMLIQ(context.Background(), q, 1, 1e-2)
			return err
		}, w.qs)
	})
	b.Run("accuracy-1e6", func(b *testing.B) {
		benchFig7(b, w.e.TreeMgr, func(q pfv.Vector) error {
			_, _, err := w.e.Tree.KMLIQ(context.Background(), q, 1, 1e-6)
			return err
		}, w.qs)
	})
}

// BenchmarkReopen measures the build-once/query-forever path of the durable
// storage engine: each iteration cold-opens the persisted DS1 index (fresh
// manager, empty buffer cache) and runs the first k-MLIQ query against it.
// pages/query is the logical page-access cost of that first cold query —
// the latency a restarted server pays before its cache warms up.
func BenchmarkReopen(b *testing.B) {
	w := benchDS1(b)
	path := filepath.Join(b.TempDir(), "reopen.gtree")
	tr, err := gausstree.New(w.ds.Dim, gausstree.Options{Path: path})
	if err != nil {
		b.Fatal(err)
	}
	if err := tr.BulkLoad(w.ds.Vectors); err != nil {
		b.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		b.Fatal(err)
	}

	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var pages uint64
	for i := 0; i < b.N; i++ {
		re, err := gausstree.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		_, stats, err := re.KMLIQContext(ctx, w.qs[i%len(w.qs)].Vector, 1)
		if err != nil {
			b.Fatal(err)
		}
		pages += stats.PageAccesses
		if err := re.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(pages)/float64(b.N), "pages/query")
}

// BenchmarkKMLIQHot measures the pure in-memory k-MLIQ path: the index is
// fully cached (buffer cache and decoded-node cache warmed by a full pass
// over the query set), so ns/op and allocs/op are the CPU cost of the hot
// read path itself — the quantity the sharded buffer cache, decoded-node
// cache and allocation-free traversal of PR 5 optimize. pages/query stays
// reported to prove the traversal itself is unchanged.
func BenchmarkKMLIQHot(b *testing.B) {
	w := benchDS2(b)
	ctx := context.Background()
	for _, bc := range []struct {
		name string
		run  func(q pfv.Vector) (gausstree.QueryStats, error)
	}{
		{"ranked", func(q pfv.Vector) (gausstree.QueryStats, error) {
			_, st, err := w.e.Tree.KMLIQRanked(ctx, q, 3)
			return st, err
		}},
		{"refined", func(q pfv.Vector) (gausstree.QueryStats, error) {
			_, st, err := w.e.Tree.KMLIQ(ctx, q, 3, 1e-4)
			return st, err
		}},
	} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			// Warm both cache layers: every page touched by every query.
			for _, q := range w.qs {
				if _, err := bc.run(q.Vector); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var pages uint64
			for i := 0; i < b.N; i++ {
				st, err := bc.run(w.qs[i%len(w.qs)].Vector)
				if err != nil {
					b.Fatal(err)
				}
				pages += st.PageAccesses
			}
			b.StopTimer()
			b.ReportMetric(float64(pages)/float64(b.N), "pages/query")
		})
	}
}

// BenchmarkKMLIQHotQuantized is BenchmarkKMLIQHot/ranked on the opt-in
// quantized leaf formats, so the cost of interval screening plus sidecar
// re-scoring can be compared against the exact columnar baseline above.
func BenchmarkKMLIQHotQuantized(b *testing.B) {
	p := dataset.DefaultSyntheticParams()
	p.N = benchDS2N
	ds, err := dataset.Synthetic(p)
	if err != nil {
		b.Fatal(err)
	}
	qs, err := dataset.MakeQueries(ds, dataset.QueryParams{Count: benchQ, Sigma: p.Sigma, Seed: 102})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, format := range []core.LeafFormat{core.LeafFloat32, core.LeafGrid8} {
		e, err := eval.Build(ds, eval.Setup{LeafFormat: format})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(format.String(), func(b *testing.B) {
			for _, q := range qs {
				if _, _, err := e.Tree.KMLIQRanked(ctx, q.Vector, 3); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var pages uint64
			for i := 0; i < b.N; i++ {
				_, st, err := e.Tree.KMLIQRanked(ctx, qs[i%len(qs)].Vector, 3)
				if err != nil {
					b.Fatal(err)
				}
				pages += st.PageAccesses
			}
			b.StopTimer()
			b.ReportMetric(float64(pages)/float64(b.N), "pages/query")
		})
	}
}

// BenchmarkTIQHot is the threshold-query face of the fully cached read path.
func BenchmarkTIQHot(b *testing.B) {
	w := benchDS2(b)
	ctx := context.Background()
	for _, q := range w.qs {
		if _, _, err := w.e.Tree.TIQ(ctx, q.Vector, 0.8, 1e-4); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := w.e.Tree.TIQ(ctx, w.qs[i%len(w.qs)].Vector, 0.8, 1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchExecutor measures concurrent ranked-query throughput on one
// Gauss-tree engine through the query.BatchExecutor worker pool.
func BenchmarkBatchExecutor(b *testing.B) {
	w := benchDS2(b)
	reqs := make([]query.Request, len(w.qs))
	for i, q := range w.qs {
		reqs[i] = query.Request{Kind: query.KindKMLIQRanked, Query: q.Vector, K: 1}
	}
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			ex := query.NewBatchExecutor(w.e.Tree, workers)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, resp := range ex.Execute(context.Background(), reqs) {
					if resp.Err != nil {
						b.Fatal(resp.Err)
					}
				}
			}
		})
	}
}

// buildShardedEngine loads the world's vectors into an n-shard in-memory
// engine (one page manager per shard, hash-partitioned).
func buildShardedEngine(b *testing.B, w *world, n int) *shard.Engine {
	b.Helper()
	trees := make([]*core.Tree, n)
	for i := range trees {
		mgr, err := pagefile.NewManager(pagefile.NewMemBackend(pagefile.DefaultPageSize), pagefile.DefaultPageSize)
		if err != nil {
			b.Fatal(err)
		}
		if trees[i], err = core.New(mgr, w.ds.Dim, core.Config{}); err != nil {
			b.Fatal(err)
		}
	}
	eng, err := shard.New(trees, shard.HashByID())
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.BulkLoad(w.ds.Vectors); err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkShardedKMLIQ measures the sharded engine's concurrent fan-out on
// the DS2 subset across shard counts: per-query wall time plus the paper's
// page-access metric aggregated over all shards (the fan-out reads more
// total pages than one tree; the parallelism is what buys wall-clock back
// on deep trees and cold caches).
func BenchmarkShardedKMLIQ(b *testing.B) {
	w := benchDS2(b)
	ctx := context.Background()
	for _, n := range []int{1, 4} {
		n := n
		b.Run(fmt.Sprintf("shards-%d", n), func(b *testing.B) {
			eng := buildShardedEngine(b, w, n)
			var pages uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := eng.KMLIQ(ctx, w.qs[i%len(w.qs)].Vector, 3, 1e-4)
				if err != nil {
					b.Fatal(err)
				}
				pages += st.PageAccesses
			}
			b.ReportMetric(float64(pages)/float64(b.N), "pages/query")
		})
	}
}

// BenchmarkShardedTIQ is the threshold-query face of the sharded fan-out,
// including the cross-shard denominator merge rounds.
func BenchmarkShardedTIQ(b *testing.B) {
	w := benchDS2(b)
	ctx := context.Background()
	for _, n := range []int{1, 4} {
		n := n
		b.Run(fmt.Sprintf("shards-%d", n), func(b *testing.B) {
			eng := buildShardedEngine(b, w, n)
			var rounds int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := eng.TIQDetail(ctx, w.qs[i%len(w.qs)].Vector, 0.8, 1e-3)
				if err != nil {
					b.Fatal(err)
				}
				rounds += st.MergeRounds
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/query")
		})
	}
}
