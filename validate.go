package gausstree

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidQuery is returned (wrapped) by every query and mutation method
// of Tree and Sharded when the arguments are invalid: k < 1 for the k-MLIQ
// variants, pTheta outside (0, 1] for the TIQ variants, or a query or
// mutation vector whose dimensionality differs from the tree's. Rejections
// happen before the storage engine is touched, so invalid input can never
// be mistaken for a storage fault (and never poisons the tree). Test with
// errors.Is.
var ErrInvalidQuery = errors.New("gausstree: invalid query")

// ErrInvalidOptions is returned (wrapped) by the constructors when an
// Options/IngestOptions field is out of range — a non-positive shard
// count, a non-positive or infinite MergeDistance, a negative TTL. Test
// with errors.Is.
var ErrInvalidOptions = errors.New("gausstree: invalid options")

// checkQueryVector rejects query vectors of the wrong dimensionality. A zero
// Vector (dimension 0) is caught here too.
func checkQueryVector(q Vector, dim int) error {
	if q.Dim() != dim {
		return fmt.Errorf("%w: query dimension %d, tree dimension %d", ErrInvalidQuery, q.Dim(), dim)
	}
	return nil
}

// checkMutationVector rejects mutation vectors of the wrong dimensionality
// before they reach the storage engine, so bad input surfaces as
// ErrInvalidQuery instead of looking like a mid-mutation storage fault to
// the serving layer's degrade detection.
func checkMutationVector(v Vector, dim int) error {
	if v.Dim() != dim {
		return fmt.Errorf("%w: vector id %d has dimension %d, tree dimension %d", ErrInvalidQuery, v.ID, v.Dim(), dim)
	}
	return nil
}

// checkMutationVectors is checkMutationVector over a batch.
func checkMutationVectors(vs []Vector, dim int) error {
	for i := range vs {
		if vs[i].Dim() != dim {
			return fmt.Errorf("%w: vector %d (id %d) has dimension %d, tree dimension %d", ErrInvalidQuery, i, vs[i].ID, vs[i].Dim(), dim)
		}
	}
	return nil
}

// checkK rejects non-positive k-MLIQ result counts.
func checkK(k int) error {
	if k < 1 {
		return fmt.Errorf("%w: k must be at least 1, got %d", ErrInvalidQuery, k)
	}
	return nil
}

// checkPTheta rejects thresholds outside (0, 1]. A TIQ with pTheta ≤ 0 is
// not a meaningful identification query (every object trivially qualifies),
// and NaN compares false against everything, so it is rejected here too.
func checkPTheta(pTheta float64) error {
	if math.IsNaN(pTheta) || pTheta <= 0 || pTheta > 1 {
		return fmt.Errorf("%w: threshold must be in (0, 1], got %v", ErrInvalidQuery, pTheta)
	}
	return nil
}
