package gausstree

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidQuery is returned (wrapped) by every query method of Tree and
// Sharded when the query arguments are invalid: k < 1 for the k-MLIQ
// variants, pTheta outside (0, 1] for the TIQ variants, or a query vector
// whose dimensionality differs from the tree's. Test with errors.Is.
var ErrInvalidQuery = errors.New("gausstree: invalid query")

// ErrInvalidOptions is returned (wrapped) by the constructors when an
// Options/IngestOptions field is out of range — a non-positive shard
// count, a non-positive or infinite MergeDistance, a negative TTL. Test
// with errors.Is.
var ErrInvalidOptions = errors.New("gausstree: invalid options")

// checkQueryVector rejects query vectors of the wrong dimensionality. A zero
// Vector (dimension 0) is caught here too.
func checkQueryVector(q Vector, dim int) error {
	if q.Dim() != dim {
		return fmt.Errorf("%w: query dimension %d, tree dimension %d", ErrInvalidQuery, q.Dim(), dim)
	}
	return nil
}

// checkK rejects non-positive k-MLIQ result counts.
func checkK(k int) error {
	if k < 1 {
		return fmt.Errorf("%w: k must be at least 1, got %d", ErrInvalidQuery, k)
	}
	return nil
}

// checkPTheta rejects thresholds outside (0, 1]. A TIQ with pTheta ≤ 0 is
// not a meaningful identification query (every object trivially qualifies),
// and NaN compares false against everything, so it is rejected here too.
func checkPTheta(pTheta float64) error {
	if math.IsNaN(pTheta) || pTheta <= 0 || pTheta > 1 {
		return fmt.Errorf("%w: threshold must be in (0, 1], got %v", ErrInvalidQuery, pTheta)
	}
	return nil
}
