package gausstree_test

import (
	"context"
	"fmt"
	"time"

	gausstree "github.com/gauss-tree/gausstree"
)

// ExampleTree_KMostLikely builds a tiny index and identifies the object an
// uncertain observation most likely describes.
func ExampleTree_KMostLikely() {
	tree, _ := gausstree.New(2)
	defer tree.Close()

	tree.Insert(gausstree.MustVector(1, []float64{1.0, 2.0}, []float64{0.1, 0.2}))
	tree.Insert(gausstree.MustVector(2, []float64{4.0, 0.5}, []float64{0.3, 0.1}))

	q := gausstree.MustVector(0, []float64{1.1, 1.9}, []float64{0.2, 0.2})
	matches, _ := tree.KMostLikely(q, 1)
	fmt.Printf("object %d (P=%.2f)\n", matches[0].Vector.ID, matches[0].Probability)
	// Output: object 1 (P=1.00)
}

// ExampleTree_Threshold reproduces the paper's §3.1 threshold query: with
// Pθ = 12% the query of Figure 1 returns O3 (77%) and O2 (13%) but not O1.
func ExampleTree_Threshold() {
	tree, _ := gausstree.New(2)
	defer tree.Close()

	tree.Insert(gausstree.MustVector(1, []float64{1.1503, 1.0088}, []float64{0.3579, 0.2864}))
	tree.Insert(gausstree.MustVector(2, []float64{1.8674, 0.6274}, []float64{0.8130, 1.8051}))
	tree.Insert(gausstree.MustVector(3, []float64{1.3597, 1.0857}, []float64{1.3154, 0.1790}))

	q := gausstree.MustVector(0, []float64{0, 0}, []float64{0.0617, 0.9401})
	hits, _ := tree.Threshold(q, 0.12)
	for _, m := range hits {
		fmt.Printf("O%d %.0f%%\n", m.Vector.ID, 100*m.Probability)
	}
	// Output:
	// O3 77%
	// O2 13%
}

// ExampleTree_KMLIQContext shows the context-aware query API: the query
// honors cancellation/deadlines and reports per-query statistics, including
// the page-access count that is the paper's central efficiency metric.
func ExampleTree_KMLIQContext() {
	tree, _ := gausstree.New(2)
	defer tree.Close()

	tree.Insert(gausstree.MustVector(1, []float64{1.0, 2.0}, []float64{0.1, 0.2}))
	tree.Insert(gausstree.MustVector(2, []float64{4.0, 0.5}, []float64{0.3, 0.1}))

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()

	q := gausstree.MustVector(0, []float64{1.1, 1.9}, []float64{0.2, 0.2})
	matches, stats, err := tree.KMLIQContext(ctx, q, 1)
	if err != nil {
		fmt.Println("query aborted:", err)
		return
	}
	fmt.Printf("object %d, touched %d page(s)\n", matches[0].Vector.ID, stats.PageAccesses)
	// Output: object 1, touched 1 page(s)
}

// ExamplePosterior evaluates identification probabilities without an index
// (the paper's general solution over a sequential scan).
func ExamplePosterior() {
	db := []gausstree.Vector{
		gausstree.MustVector(1, []float64{0}, []float64{0.5}),
		gausstree.MustVector(2, []float64{3}, []float64{0.5}),
	}
	q := gausstree.MustVector(0, []float64{0.2}, []float64{0.5})
	ps := gausstree.Posterior(gausstree.CombineAdditive, db, q)
	fmt.Printf("%.3f %.3f\n", ps[0], ps[1])
	// Output: 0.980 0.020
}
