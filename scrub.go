package gausstree

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/gauss-tree/gausstree/internal/core"
	"github.com/gauss-tree/gausstree/internal/pagefile"
	"github.com/gauss-tree/gausstree/internal/wal"
)

// ErrCorrupt is wrapped by Scrub and CheckInvariants when the index's
// persisted state is damaged: a page whose CRC trailer no longer matches
// (bit rot, torn write), a page that no longer decodes as a node, a
// write-ahead-log frame corrupted below its durable horizon, or a violated
// structural invariant. Test with errors.Is.
var ErrCorrupt = core.ErrCorrupt

// ScrubOptions tune one integrity pass.
type ScrubOptions struct {
	// PagesPerSecond rate-limits the scan so a background scrubber never
	// competes with foreground queries for I/O; 0 scans at full speed.
	PagesPerSecond int
}

// ScrubReport summarizes one integrity pass.
type ScrubReport struct {
	// Pages is the number of index pages read from the backend and verified
	// (CRC trailer plus node decode), summed across shards for Sharded.
	Pages int
	// WALRecords is the number of durable write-ahead-log records whose
	// checksums were verified (0 for memory-backed indexes).
	WALRecords int
	// Elapsed is the wall-clock duration of the pass.
	Elapsed time.Duration
}

// Scrub verifies the index's persisted state end to end: every page
// reachable from the current published snapshot is re-read from the storage
// backend — bypassing the buffer cache, so file backends re-verify the CRC
// trailer on a physical read — and decoded as a node, and the durable
// prefix of the write-ahead log is re-checksummed. Damage is reported
// wrapping ErrCorrupt and the pass aborts on the first damaged page.
//
// The walk pins a snapshot exactly like a query: it runs concurrently with
// mutations, takes no tree lock and charges nothing to the I/O counters.
// gaussd runs Scrub periodically in the background (-scrub-interval) and
// enters degraded mode when it fails.
func (t *Tree) Scrub(ctx context.Context, opts ScrubOptions) (ScrubReport, error) {
	st, err := t.state()
	if err != nil {
		return ScrubReport{}, err
	}
	start := time.Now()
	rep, err := st.tree.Scrub(ctx, newScrubThrottle(ctx, opts.PagesPerSecond))
	out := ScrubReport{Pages: rep.Pages, Elapsed: time.Since(start)}
	if err != nil {
		return out, scrubErr(err)
	}
	if st.wal != nil {
		n, werr := st.wal.CheckIntegrity()
		out.WALRecords = n
		out.Elapsed = time.Since(start)
		if werr != nil {
			return out, scrubWALErr(werr)
		}
	}
	return out, nil
}

// Scrub verifies every shard in turn (one snapshot per shard) under one
// shared rate limit; see Tree.Scrub.
func (s *Sharded) Scrub(ctx context.Context, opts ScrubOptions) (ScrubReport, error) {
	st, err := s.state()
	if err != nil {
		return ScrubReport{}, err
	}
	start := time.Now()
	throttle := newScrubThrottle(ctx, opts.PagesPerSecond)
	var out ScrubReport
	for i := 0; i < st.eng.NumShards(); i++ {
		rep, err := st.eng.Tree(i).Scrub(ctx, throttle)
		out.Pages += rep.Pages
		if err != nil {
			out.Elapsed = time.Since(start)
			return out, fmt.Errorf("shard %d: %w", i, scrubErr(err))
		}
		if st.wals[i] != nil {
			n, werr := st.wals[i].CheckIntegrity()
			out.WALRecords += n
			if werr != nil {
				out.Elapsed = time.Since(start)
				return out, fmt.Errorf("shard %d: %w", i, scrubWALErr(werr))
			}
		}
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// scrubErr maps a core scrub error onto the public error surface: a page
// store closed under the scan is ErrClosed (the tree went away, nothing is
// damaged); everything else already wraps ErrCorrupt or is a context error.
func scrubErr(err error) error {
	if errors.Is(err, pagefile.ErrClosed) {
		return ErrClosed
	}
	return err
}

// scrubWALErr maps a write-ahead-log integrity error likewise: a closed log
// is ErrClosed, checksum damage below the durable horizon wraps ErrCorrupt,
// and a failed log (sticky injected or real I/O error) passes through — the
// log is broken, not provably corrupt on disk.
func scrubWALErr(err error) error {
	switch {
	case errors.Is(err, wal.ErrClosed):
		return ErrClosed
	case errors.Is(err, wal.ErrCorrupt):
		return fmt.Errorf("%w: write-ahead log: %w", ErrCorrupt, err)
	default:
		return err
	}
}

// newScrubThrottle builds the per-page pacing hook: strict interval pacing
// (no burst credit accrues while the scan is stalled) with a context-
// interruptible sleep.
func newScrubThrottle(ctx context.Context, pagesPerSecond int) func() error {
	if pagesPerSecond <= 0 {
		return ctx.Err
	}
	interval := time.Second / time.Duration(pagesPerSecond)
	var next time.Time
	return func() error {
		now := time.Now()
		if next.Before(now) {
			next = now
		}
		if wait := next.Sub(now); wait > 0 {
			timer := time.NewTimer(wait)
			defer timer.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-timer.C:
			}
		}
		next = next.Add(interval)
		return ctx.Err()
	}
}
