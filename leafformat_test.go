package gausstree_test

import (
	"math/rand"
	"path/filepath"
	"testing"

	gausstree "github.com/gauss-tree/gausstree"
)

// TestLeafFormatPersistence: the leaf format chosen at build time is
// persisted with the index and restored by Open/OpenSharded, with the
// Options field of the reopening process ignored.
func TestLeafFormatPersistence(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	vs := randomWorld(rng, 200, 2)
	for _, format := range []gausstree.LeafFormat{
		gausstree.LeafExact, gausstree.LeafFloat32, gausstree.LeafGrid8, gausstree.LeafLegacyRow,
	} {
		path := filepath.Join(t.TempDir(), "t.gtree")
		tr, err := gausstree.New(2, gausstree.Options{Path: path, PageSize: 1024, LeafFormat: format})
		if err != nil {
			t.Fatal(err)
		}
		if got := tr.LeafFormat(); got != format {
			t.Fatalf("fresh tree reports leaf format %v, want %v", got, format)
		}
		if _, err := tr.InsertAll(vs); err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		// Open with a contradictory Options.LeafFormat: file wins.
		re, err := gausstree.Open(path, gausstree.Options{LeafFormat: gausstree.LeafGrid8})
		if err != nil {
			t.Fatal(err)
		}
		if got := re.LeafFormat(); got != format {
			t.Fatalf("reopened tree reports leaf format %v, want %v", got, format)
		}
		if err := re.CheckInvariants(); err != nil {
			t.Fatalf("%v reopened invariants: %v", format, err)
		}
		if re.Len() != len(vs) {
			t.Fatalf("%v reopened Len %d, want %d", format, re.Len(), len(vs))
		}
		q := gausstree.MustVector(0, vs[0].Mean, vs[0].Sigma)
		ms, err := re.KMostLikely(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 1 || !(ms[0].ProbLow <= ms[0].ProbHigh) {
			t.Fatalf("%v reopened query returned %d malformed results", format, len(ms))
		}
		re.Close()
	}
}

// TestParseLeafFormat pins the public parser's vocabulary.
func TestParseLeafFormat(t *testing.T) {
	cases := map[string]gausstree.LeafFormat{
		"":           gausstree.LeafExact,
		"exact":      gausstree.LeafExact,
		"float32":    gausstree.LeafFloat32,
		"grid8":      gausstree.LeafGrid8,
		"legacy-row": gausstree.LeafLegacyRow,
	}
	for s, want := range cases {
		got, err := gausstree.ParseLeafFormat(s)
		if err != nil || got != want {
			t.Fatalf("ParseLeafFormat(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := gausstree.ParseLeafFormat("mp3"); err == nil {
		t.Fatal("ParseLeafFormat accepted garbage")
	}
}

// TestShardedQuantizedConformance: on a sharded index with quantized leaves,
// ranked answers must match the exact sharded index id-for-id, and the
// cross-shard merged probability intervals must contain the exact index's
// certified probabilities — quantization may widen a certified interval but
// never exclude the truth.
func TestShardedQuantizedConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	vs := randomWorld(rng, 800, 3)
	const accuracy = 1e-5

	build := func(format gausstree.LeafFormat) *gausstree.Sharded {
		s, err := gausstree.NewSharded(3, 3, gausstree.Options{Accuracy: accuracy, LeafFormat: format})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.BulkLoad(vs); err != nil {
			t.Fatal(err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("%v sharded invariants: %v", format, err)
		}
		if got := s.LeafFormat(); got != format {
			t.Fatalf("sharded reports leaf format %v, want %v", got, format)
		}
		return s
	}
	exact := build(gausstree.LeafExact)
	defer exact.Close()

	for _, format := range []gausstree.LeafFormat{gausstree.LeafFloat32, gausstree.LeafGrid8} {
		quant := build(format)
		for trial := 0; trial < 12; trial++ {
			src := vs[rng.Intn(len(vs))]
			q := gausstree.MustVector(0, src.Mean, src.Sigma)
			k := rng.Intn(5) + 1

			wantR, err := exact.KMostLikelyRanked(q, k)
			if err != nil {
				t.Fatal(err)
			}
			gotR, err := quant.KMostLikelyRanked(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(gotR) != len(wantR) {
				t.Fatalf("%v trial %d: %d ranked results, want %d", format, trial, len(gotR), len(wantR))
			}
			for i := range wantR {
				if gotR[i].Vector.ID != wantR[i].Vector.ID {
					t.Fatalf("%v trial %d rank %d: id %d, exact %d",
						format, trial, i, gotR[i].Vector.ID, wantR[i].Vector.ID)
				}
			}

			want, err := exact.KMostLikely(q, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := quant.KMostLikely(q, k)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				p := want[i].Probability
				if !(got[i].ProbLow <= p+accuracy && p <= got[i].ProbHigh+accuracy) {
					t.Fatalf("%v trial %d rank %d: quantized interval [%v,%v] excludes exact probability %v",
						format, trial, i, got[i].ProbLow, got[i].ProbHigh, p)
				}
			}
		}
		quant.Close()
	}
}
