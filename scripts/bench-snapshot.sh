#!/usr/bin/env bash
# bench-snapshot.sh — run the hot read-path benchmarks with allocation
# reporting and emit the results as JSON, so perf trajectories can be
# recorded in BENCH_*.json files and compared across revisions.
#
# Usage:
#   scripts/bench-snapshot.sh [out.json] [bench regex] [count] [baseline.json] [benchtime]
#
# Defaults: out.json = "-" (stdout), regex covers the hot-path benchmarks
# (KMLIQHot, TIQHot, ReadNodeHot), count = 1, benchtime = the go test
# default (pass e.g. "5000x" — a multiple of the 50-query cycle — to make
# pages/query comparable across snapshots). The JSON shape is
#   {"goos": ..., "goarch": ..., "benchmarks": [{"name": ..., "iterations": N,
#     "metrics": {"ns/op": ..., "B/op": ..., "allocs/op": ..., ...}}]}
# with every reported metric (including custom ones like pages/query)
# captured generically.
#
# When a baseline file is given (e.g. the committed BENCH_PR5.json), the
# fresh snapshot is additionally diffed against it: a markdown delta table
# is printed to stdout (ready for a CI job summary). Baselines may be either
# a flat snapshot or a {"before": ..., "after": ...} trajectory file, in
# which case the "after" section is the reference. The diff is informative
# only — it never fails the run (benchmark numbers from shared CI runners
# are not gating material; see BENCH_PR6.json for curated comparisons).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:--}"
REGEX="${2:-KMLIQHot|TIQHot|ReadNodeHot}"
COUNT="${3:-1}"
BASELINE="${4:-}"
BENCHTIME="${5:-}"

RAW="$(mktemp)"
SNAP="$(mktemp)"
trap 'rm -f "$RAW" "$SNAP"' EXIT

go test -run '^$' -bench "$REGEX" -benchmem -count="$COUNT" \
	${BENCHTIME:+-benchtime="$BENCHTIME"} \
	./... >"$RAW" 2>&1 || { cat "$RAW" >&2; exit 1; }

JSON="$(awk '
/^Benchmark/ {
	name = $1; iters = $2
	printf "%s{\"name\":\"%s\",\"iterations\":%s,\"metrics\":{", sep, name, iters
	msep = ""
	for (i = 3; i + 1 <= NF; i += 2) {
		printf "%s\"%s\":%s", msep, $(i + 1), $i
		msep = ","
	}
	printf "}}"
	sep = ",\n    "
}
' "$RAW")"

if [ -z "$JSON" ]; then
	echo "bench-snapshot: no benchmark results matched regex \"$REGEX\"" >&2
	cat "$RAW" >&2
	exit 1
fi

printf '{\n  "goos": "%s",\n  "goarch": "%s",\n  "benchmarks": [\n    %s\n  ]\n}\n' \
	"$(go env GOOS)" "$(go env GOARCH)" "$JSON" >"$SNAP"

if [ "$OUT" = "-" ]; then
	cat "$SNAP"
else
	cp "$SNAP" "$OUT"
	echo "bench-snapshot: wrote $OUT" >&2
fi

if [ -n "$BASELINE" ]; then
	if [ ! -f "$BASELINE" ]; then
		echo "bench-snapshot: baseline $BASELINE not found, skipping diff" >&2
	elif ! command -v python3 >/dev/null; then
		echo "bench-snapshot: python3 not available, skipping diff" >&2
	else
		python3 - "$BASELINE" "$SNAP" <<'PYEOF'
import json, sys

with open(sys.argv[1]) as f:
    base = json.load(f)
with open(sys.argv[2]) as f:
    cur = json.load(f)
# Trajectory files carry {before, after}; diff against "after".
if "benchmarks" not in base and "after" in base:
    base = base["after"]

def index(snap):
    return {b["name"]: b.get("metrics", {}) for b in snap.get("benchmarks", [])}

bidx, cidx = index(base), index(cur)
metrics = ["ns/op", "pages/query", "B/op", "allocs/op"]
print(f"### Hot-path benchmark delta vs `{sys.argv[1]}`\n")
print("| benchmark | metric | baseline | current | delta |")
print("|---|---|---:|---:|---:|")
for name in sorted(set(bidx) | set(cidx)):
    b, c = bidx.get(name), cidx.get(name)
    for m in metrics:
        if b is None or c is None or m not in b and m not in c:
            continue
        bv, cv = (b or {}).get(m), (c or {}).get(m)
        if bv is None or cv is None:
            continue
        delta = "n/a" if bv == 0 else f"{(cv - bv) / bv * 100:+.1f}%"
        print(f"| {name} | {m} | {bv} | {cv} | {delta} |")
    if b is None:
        print(f"| {name} | — | (absent) | present | new |")
    elif c is None:
        print(f"| {name} | — | present | (absent) | gone |")
print()
print("_Informative only: shared-runner numbers fluctuate; curated same-machine")
print("comparisons live in the committed BENCH_*.json files._")
PYEOF
	fi
fi
