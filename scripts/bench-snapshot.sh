#!/usr/bin/env bash
# bench-snapshot.sh — run the hot read-path benchmarks with allocation
# reporting and emit the results as JSON, so perf trajectories can be
# recorded in BENCH_*.json files and compared across revisions.
#
# Usage:
#   scripts/bench-snapshot.sh [out.json] [bench regex] [count]
#
# Defaults: out.json = "-" (stdout), regex covers the hot-path benchmarks
# (KMLIQHot, TIQHot, ReadNodeHot), count = 1. The JSON shape is
#   {"goos": ..., "goarch": ..., "benchmarks": [{"name": ..., "iterations": N,
#     "metrics": {"ns/op": ..., "B/op": ..., "allocs/op": ..., ...}}]}
# with every reported metric (including custom ones like pages/query)
# captured generically.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:--}"
REGEX="${2:-KMLIQHot|TIQHot|ReadNodeHot}"
COUNT="${3:-1}"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$REGEX" -benchmem -count="$COUNT" \
	./... >"$RAW" 2>&1 || { cat "$RAW" >&2; exit 1; }

JSON="$(awk '
/^Benchmark/ {
	name = $1; iters = $2
	printf "%s{\"name\":\"%s\",\"iterations\":%s,\"metrics\":{", sep, name, iters
	msep = ""
	for (i = 3; i + 1 <= NF; i += 2) {
		printf "%s\"%s\":%s", msep, $(i + 1), $i
		msep = ","
	}
	printf "}}"
	sep = ",\n    "
}
' "$RAW")"

if [ -z "$JSON" ]; then
	echo "bench-snapshot: no benchmark results matched regex \"$REGEX\"" >&2
	cat "$RAW" >&2
	exit 1
fi

PAYLOAD=$(printf '{\n  "goos": "%s",\n  "goarch": "%s",\n  "benchmarks": [\n    %s\n  ]\n}\n' \
	"$(go env GOOS)" "$(go env GOARCH)" "$JSON")

if [ "$OUT" = "-" ]; then
	printf '%s' "$PAYLOAD"
else
	printf '%s' "$PAYLOAD" >"$OUT"
	echo "bench-snapshot: wrote $OUT" >&2
fi
