#!/usr/bin/env bash
# Run the project's static-analysis gate exactly as CI does: build the
# gausslint multichecker from this checkout and run it over the whole module
# through `go vet -vettool`, so the stock vet passes and the six project
# analyzers (epochorder, lockorder, poolreset, errwrap, ctxflow, waldurable —
# plus nilness, lostcancel, copylock and unusedwrite) all gate together.
# Any finding exits non-zero. Suppressions require a
# `//lint:ignore <analyzers> <reason>` directive; see internal/analysis/doc.go.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "# building gausslint"
go build -o "$tmp/gausslint" ./cmd/gausslint

echo "# go vet -vettool=gausslint ./..."
go vet -vettool="$tmp/gausslint" "$@" ./...
echo "# gausslint clean"
