#!/usr/bin/env bash
# End-to-end smoke test of the serving layer: build the daemon and the CLI,
# generate a data set, persist an index, serve it with gaussd, and issue one
# k-MLIQ and one TIQ through `gausscli -addr` — asserting both return
# non-empty certified results over the wire. CI runs this on every push; it
# is also handy locally after touching the server, client or wire packages.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

addr="127.0.0.1:${GAUSSD_SMOKE_PORT:-18442}"

echo "# building gaussd, gausscli, gaussgen"
go build -o "$tmp/bin/" ./cmd/gaussd ./cmd/gausscli ./cmd/gaussgen

echo "# generating data set and building the index"
"$tmp/bin/gaussgen" -set ds2 -n 2000 -out "$tmp/ds.csv" -queries "$tmp/queries.csv"
"$tmp/bin/gausscli" -data "$tmp/ds.csv" -index "$tmp/ds.gtree"

echo "# starting gaussd on $addr"
"$tmp/bin/gaussd" -index "$tmp/ds.gtree" -addr "$addr" &
pid=$!

for _ in $(seq 100); do
  if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "gaussd exited before becoming healthy" >&2
    exit 1
  fi
  sleep 0.1
done
curl -fsS "http://$addr/healthz" >/dev/null

# The first generated query, without its ground-truth id column.
q=$(sed -n 2p "$tmp/queries.csv" | cut -d, -f2-)

echo "# k-MLIQ via gausscli -addr"
out=$("$tmp/bin/gausscli" -addr "$addr" -kmliq "$q" -k 3)
echo "$out"
echo "$out" | grep -q 'certified \[' || { echo "k-MLIQ returned no certified results" >&2; exit 1; }

echo "# TIQ via gausscli -addr"
out=$("$tmp/bin/gausscli" -addr "$addr" -tiq "$q" -p 0.01)
echo "$out"
echo "$out" | grep -q 'certified \[' || { echo "TIQ returned no certified results" >&2; exit 1; }

echo "# graceful shutdown"
kill -TERM "$pid"
wait "$pid"
pid=""

echo "gaussd smoke: OK"
