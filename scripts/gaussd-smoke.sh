#!/usr/bin/env bash
# End-to-end smoke test of the serving layer: build the daemon and the CLI,
# generate a data set, persist an index, serve it with gaussd, and issue one
# k-MLIQ and one TIQ through `gausscli -addr` — asserting both return
# non-empty certified results over the wire. CI runs this on every push; it
# is also handy locally after touching the server, client or wire packages.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

addr="127.0.0.1:${GAUSSD_SMOKE_PORT:-18442}"

echo "# building gaussd, gausscli, gaussgen"
go build -o "$tmp/bin/" ./cmd/gaussd ./cmd/gausscli ./cmd/gaussgen

echo "# generating data set and building the index"
"$tmp/bin/gaussgen" -set ds2 -n 2000 -out "$tmp/ds.csv" -queries "$tmp/queries.csv"
"$tmp/bin/gausscli" -data "$tmp/ds.csv" -index "$tmp/ds.gtree"

echo "# starting gaussd on $addr"
"$tmp/bin/gaussd" -index "$tmp/ds.gtree" -addr "$addr" &
pid=$!

for _ in $(seq 100); do
  if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "gaussd exited before becoming healthy" >&2
    exit 1
  fi
  sleep 0.1
done
curl -fsS "http://$addr/healthz" >/dev/null

# The first generated query, without its ground-truth id column.
q=$(sed -n 2p "$tmp/queries.csv" | cut -d, -f2-)

echo "# k-MLIQ via gausscli -addr"
out=$("$tmp/bin/gausscli" -addr "$addr" -kmliq "$q" -k 3)
echo "$out"
echo "$out" | grep -q 'certified \[' || { echo "k-MLIQ returned no certified results" >&2; exit 1; }

echo "# TIQ via gausscli -addr"
out=$("$tmp/bin/gausscli" -addr "$addr" -tiq "$q" -p 0.01)
echo "$out"
echo "$out" | grep -q 'certified \[' || { echo "TIQ returned no certified results" >&2; exit 1; }

echo "# insert storm with concurrent reads"
# Hammer /v1/insert from the background while reads keep flowing: the
# snapshot-isolated read path must answer every query mid-storm, and the
# non-blocking write path must acknowledge every insert durably.
storm_log="$tmp/storm.log"
(
  for i in $(seq 1 120); do
    curl -fsS "http://$addr/v1/insert" \
      -d "{\"vectors\":[{\"id\":$((900000 + i)),\"mean\":[0.$((i % 10))1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,1.0],\"sigma\":[0.05,0.05,0.05,0.05,0.05,0.05,0.05,0.05,0.05,0.05]}]}" \
      >>"$storm_log" || echo "INSERT-FAIL" >>"$storm_log"
  done
) &
storm=$!
reads=0
while kill -0 "$storm" 2>/dev/null; do
  out=$("$tmp/bin/gausscli" -addr "$addr" -kmliq "$q" -k 3)
  echo "$out" | grep -q 'certified \[' \
    || { echo "read failed during insert storm" >&2; exit 1; }
  reads=$((reads + 1))
done
wait "$storm"
grep -q "INSERT-FAIL" "$storm_log" && { echo "insert failed during storm" >&2; exit 1; }
inserted=$(grep -o '"inserted":1' "$storm_log" | wc -l)
echo "# storm done: 120 inserts acknowledged ($inserted confirmed), $reads reads succeeded mid-storm"
[ "$inserted" -eq 120 ] || { echo "expected 120 acknowledged inserts, got $inserted" >&2; exit 1; }
[ "$reads" -ge 1 ] || { echo "no reads completed during the storm" >&2; exit 1; }

echo "# delete through the non-blocking path"
del=$(curl -fsS "http://$addr/v1/delete" \
  -d '{"vector":{"id":900001,"mean":[0.11,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,1.0],"sigma":[0.05,0.05,0.05,0.05,0.05,0.05,0.05,0.05,0.05,0.05]}}')
echo "$del" | grep -q '"found":true' || { echo "delete did not find the stored vector" >&2; exit 1; }

echo "# /v1/stats exposes WAL and snapshot state"
stats=$(curl -fsS "http://$addr/v1/stats")
echo "$stats" | grep -q '"fsyncs":' || { echo "stats missing wal fsyncs" >&2; exit 1; }
echo "$stats" | grep -q '"mean_group_size":' || { echo "stats missing group-commit size" >&2; exit 1; }
epoch=$(echo "$stats" | grep -o '"snapshot_epoch":[0-9]*' | cut -d: -f2)
[ -n "$epoch" ] && [ "$epoch" -ge 121 ] || { echo "snapshot_epoch $epoch did not advance past the storm" >&2; exit 1; }

echo "# graceful shutdown"
kill -TERM "$pid"
wait "$pid"
pid=""

echo "gaussd smoke: OK"
