#!/usr/bin/env bash
# End-to-end smoke test of the serving layer: build the daemon and the CLI,
# generate a data set, persist an index, serve it with gaussd, and issue one
# k-MLIQ and one TIQ through `gausscli -addr` — asserting both return
# non-empty certified results over the wire. The daemon runs with its
# operations listener and slow-query log armed, so the same run also
# asserts that /metrics serves the Prometheus families mid-write-storm,
# that the request counters agree with the requests this script issued, and
# that a deliberately slow batch lands in the slow-query log. CI runs this
# on every push; it is also handy locally after touching the server, client
# or wire packages.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

addr="127.0.0.1:${GAUSSD_SMOKE_PORT:-18442}"
ops="127.0.0.1:${GAUSSD_SMOKE_OPS_PORT:-18443}"

echo "# building gaussd, gausscli, gaussgen"
go build -o "$tmp/bin/" ./cmd/gaussd ./cmd/gausscli ./cmd/gaussgen

echo "# generating data set and building the index"
"$tmp/bin/gaussgen" -set ds2 -n 2000 -out "$tmp/ds.csv" -queries "$tmp/queries.csv"
"$tmp/bin/gausscli" -data "$tmp/ds.csv" -index "$tmp/ds.gtree"

echo "# starting gaussd on $addr (ops on $ops, slow-query log armed)"
"$tmp/bin/gaussd" -index "$tmp/ds.gtree" -addr "$addr" \
  -ops-addr "$ops" -slow-query-ms 1 -slow-query-log "$tmp/slow.log" &
pid=$!

for _ in $(seq 100); do
  if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "gaussd exited before becoming healthy" >&2
    exit 1
  fi
  sleep 0.1
done
curl -fsS "http://$addr/healthz" >/dev/null

# The first generated query, without its ground-truth id column.
q=$(sed -n 2p "$tmp/queries.csv" | cut -d, -f2-)

echo "# k-MLIQ via gausscli -addr"
out=$("$tmp/bin/gausscli" -addr "$addr" -kmliq "$q" -k 3)
echo "$out"
echo "$out" | grep -q 'certified \[' || { echo "k-MLIQ returned no certified results" >&2; exit 1; }

echo "# TIQ via gausscli -addr"
out=$("$tmp/bin/gausscli" -addr "$addr" -tiq "$q" -p 0.01)
echo "$out"
echo "$out" | grep -q 'certified \[' || { echo "TIQ returned no certified results" >&2; exit 1; }

echo "# insert storm with concurrent reads"
# Hammer /v1/insert from the background while reads keep flowing: the
# snapshot-isolated read path must answer every query mid-storm, and the
# non-blocking write path must acknowledge every insert durably.
storm_log="$tmp/storm.log"
(
  for i in $(seq 1 120); do
    curl -fsS "http://$addr/v1/insert" \
      -d "{\"vectors\":[{\"id\":$((900000 + i)),\"mean\":[0.$((i % 10))1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,1.0],\"sigma\":[0.05,0.05,0.05,0.05,0.05,0.05,0.05,0.05,0.05,0.05]}]}" \
      >>"$storm_log" || echo "INSERT-FAIL" >>"$storm_log"
  done
) &
storm=$!

echo "# scraping /metrics mid-storm"
# The ops listener must answer while writes and reads are in full flight,
# and the exposition must already carry the server and engine families.
metrics=$(curl -fsS "http://$ops/metrics")
for fam in gaussd_http_requests_total gaussd_request_seconds_bucket \
           gaussd_inflight_requests gausstree_wal_fsyncs_total \
           gausstree_snapshot_epoch gausstree_pagefile_logical_reads_total \
           gaussd_build_info; do
  echo "$metrics" | grep -q "^$fam" \
    || { echo "/metrics mid-storm is missing $fam" >&2; exit 1; }
done

reads=0
while kill -0 "$storm" 2>/dev/null; do
  out=$("$tmp/bin/gausscli" -addr "$addr" -kmliq "$q" -k 3)
  echo "$out" | grep -q 'certified \[' \
    || { echo "read failed during insert storm" >&2; exit 1; }
  reads=$((reads + 1))
done
wait "$storm"
grep -q "INSERT-FAIL" "$storm_log" && { echo "insert failed during storm" >&2; exit 1; }
inserted=$(grep -o '"inserted":1' "$storm_log" | wc -l)
echo "# storm done: 120 inserts acknowledged ($inserted confirmed), $reads reads succeeded mid-storm"
[ "$inserted" -eq 120 ] || { echo "expected 120 acknowledged inserts, got $inserted" >&2; exit 1; }
[ "$reads" -ge 1 ] || { echo "no reads completed during the storm" >&2; exit 1; }

echo "# delete through the non-blocking path"
del=$(curl -fsS "http://$addr/v1/delete" \
  -d '{"vector":{"id":900001,"mean":[0.11,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,1.0],"sigma":[0.05,0.05,0.05,0.05,0.05,0.05,0.05,0.05,0.05,0.05]}}')
echo "$del" | grep -q '"found":true' || { echo "delete did not find the stored vector" >&2; exit 1; }

echo "# /v1/stats exposes WAL and snapshot state"
stats=$(curl -fsS "http://$addr/v1/stats")
echo "$stats" | grep -q '"fsyncs":' || { echo "stats missing wal fsyncs" >&2; exit 1; }
echo "$stats" | grep -q '"mean_group_size":' || { echo "stats missing group-commit size" >&2; exit 1; }
epoch=$(echo "$stats" | grep -o '"snapshot_epoch":[0-9]*' | cut -d: -f2)
[ -n "$epoch" ] && [ "$epoch" -ge 121 ] || { echo "snapshot_epoch $epoch did not advance past the storm" >&2; exit 1; }

echo "# request counters agree with the requests this script issued"
metric_value() {
  curl -fsS "http://$ops/metrics" \
    | grep -F "gaussd_http_requests_total{endpoint=\"$1\",outcome=\"ok\"}" \
    | awk '{print $2}'
}
want_kmliq=$((reads + 1)) # the initial certified query plus the storm reads
got_kmliq=$(metric_value kmliq)
[ "$got_kmliq" = "$want_kmliq" ] \
  || { echo "kmliq counter is $got_kmliq, script issued $want_kmliq" >&2; exit 1; }
got_insert=$(metric_value insert)
[ "$got_insert" = "120" ] \
  || { echo "insert counter is $got_insert, script issued 120" >&2; exit 1; }
got_tiq=$(metric_value tiq)
[ "$got_tiq" = "1" ] || { echo "tiq counter is $got_tiq, script issued 1" >&2; exit 1; }

echo "# a deliberately slow batch lands in the slow-query log"
# One batch of 100 queries shares a single admission slot and deadline, so
# it reliably crosses the 1ms slow-query threshold set at startup; its
# client-chosen trace id must come back out in the log line.
item='{"kind":"kmliq","query":{"id":0,"mean":[0.11,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,1.0],"sigma":[0.05,0.05,0.05,0.05,0.05,0.05,0.05,0.05,0.05,0.05]},"k":3}'
items=$item
for _ in $(seq 99); do items="$items,$item"; done
curl -fsS "http://$addr/v1/batch" -d "{\"queries\":[$items],\"trace_id\":\"smoke-slow-batch\"}" \
  | grep -q '"trace_id":"smoke-slow-batch"' \
  || { echo "batch response did not echo the trace id" >&2; exit 1; }
grep -q '"trace_id":"smoke-slow-batch"' "$tmp/slow.log" \
  || { echo "slow batch missing from the slow-query log" >&2; exit 1; }
grep -q '"endpoint":"batch"' "$tmp/slow.log" \
  || { echo "slow-query log line is not attributed to /v1/batch" >&2; exit 1; }

echo "# graceful shutdown"
kill -TERM "$pid"
wait "$pid"
pid=""

echo "gaussd smoke: OK"
