#!/usr/bin/env bash
# End-to-end smoke test of the self-healing serving stack: build gaussd,
# serve a file-backed index with -chaos, the background scrubber and the ops
# listener armed, then break its storage at runtime through POST /debug/fault
# and assert the degraded-mode contract from the outside:
#
#   - an insert that hits an injected WAL/page fault fails with a typed error,
#     and the daemon degrades instead of crashing;
#   - reads keep serving the last committed snapshot through every window;
#   - the recovery supervisor heals the daemon without a restart (readyz
#     returns to 200, gaussd_recoveries_total advances);
#   - every acknowledged insert is still answerable after all heals, and
#     after a graceful shutdown survives a cold reopen by gausscli;
#   - the scrubber completed passes and found nothing on healthy storage;
#   - a daemon started WITHOUT -chaos refuses /debug/fault outright.
#
# CI runs this on every push; it is also handy locally after touching the
# fault, server or recovery code.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

addr="127.0.0.1:${CHAOS_SMOKE_PORT:-18452}"
ops="127.0.0.1:${CHAOS_SMOKE_OPS_PORT:-18453}"

echo "# building gaussd, gausscli, gaussgen"
go build -o "$tmp/bin/" ./cmd/gaussd ./cmd/gausscli ./cmd/gaussgen

echo "# generating data set and building the index"
"$tmp/bin/gaussgen" -set ds2 -n 2000 -out "$tmp/ds.csv" -queries "$tmp/queries.csv"
"$tmp/bin/gausscli" -data "$tmp/ds.csv" -index "$tmp/ds.gtree"

echo "# -chaos without -ops-addr must refuse to start"
rc=0
timeout 10 "$tmp/bin/gaussd" -index "$tmp/ds.gtree" -addr "$addr" -chaos 2>/dev/null || rc=$?
[ "$rc" = "2" ] || { echo "gaussd -chaos without -ops-addr exited $rc, want 2" >&2; exit 1; }

echo "# starting gaussd on $addr (-chaos, ops on $ops, scrubber armed)"
"$tmp/bin/gaussd" -index "$tmp/ds.gtree" -addr "$addr" -ops-addr "$ops" \
  -chaos -scrub-interval 100ms -scrub-rate -1 &
pid=$!

wait_http() { # wait_http URL [tries]
  local tries="${2:-100}"
  for _ in $(seq "$tries"); do
    if curl -fsS "$1" >/dev/null 2>&1; then return 0; fi
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "gaussd exited while waiting for $1" >&2; exit 1
    fi
    sleep 0.1
  done
  echo "timed out waiting for $1" >&2; exit 1
}
wait_http "http://$addr/healthz"
wait_http "http://$addr/readyz"

echo "# /debug/fault reports a disarmed injector"
curl -fsS "http://$ops/debug/fault" | grep -q '"armed":false' \
  || { echo "/debug/fault did not report a disarmed injector" >&2; exit 1; }

# Inserted vectors live far outside the generated [0,1]^10 data and one unit
# apart from each other, so an exact k=1 re-query unambiguously returns its
# own id — the per-insert durability check below needs that separation.
vec() { # vec ID -> one 10-d vector literal with mean[0] = ID - 899000
  echo "{\"id\":$1,\"mean\":[$(($1 - 899000)),0,0,0,0,0,0,0,0,0],\"sigma\":[0.05,0.05,0.05,0.05,0.05,0.05,0.05,0.05,0.05,0.05]}"
}
qvec() { # qvec ID -> the gausscli mu,sigma query matching vec ID
  echo "$(($1 - 899000)),0.05,0,0.05,0,0.05,0,0.05,0,0.05,0,0.05,0,0.05,0,0.05,0,0.05,0,0.05"
}
insert() { # insert ID -> response body (never fails the script)
  curl -sS "http://$addr/v1/insert" -d "{\"vectors\":[$(vec "$1")]}"
}

echo "# baseline insert acknowledges"
insert 900000 | grep -q '"inserted":1' \
  || { echo "baseline insert did not acknowledge" >&2; exit 1; }
acked="900000"

# The first query from the generated set, without its ground-truth column;
# used to prove reads keep flowing through every fault window.
q=$(sed -n 2p "$tmp/queries.csv" | cut -d, -f2-)
read_ok() {
  # A read may land exactly on a recovery swap and see a typed 503 for the
  # closing snapshot; one of the follow-up attempts must serve. What is
  # never acceptable is reads staying down for a whole fault window.
  local out
  for _ in 1 2 3 4 5; do
    if out=$("$tmp/bin/gausscli" -addr "$addr" -kmliq "$q" -k 3 2>&1) \
      && echo "$out" | grep -q 'certified \['; then
      return 0
    fi
    sleep 0.05
  done
  echo "last read error: $out" >&2
  return 1
}
read_ok || { echo "baseline read failed" >&2; exit 1; }

# Three fault rounds: each arms one failure class with certainty and a cap
# of one injection, drives inserts into the fault, and waits for the heal.
# Acked ids are recorded; degraded/typed rejections are expected and fine.
id=900001
for sched in \
  '{"seed":1,"ops":{"wal_write":{"prob":1,"max_faults":1}}}' \
  '{"seed":2,"ops":{"page_write":{"prob":1,"max_faults":1,"torn":true}}}' \
  '{"seed":3,"ops":{"wal_sync":{"prob":1,"max_faults":1}}}'; do
  echo "# arming: $sched"
  curl -fsS -X POST "http://$ops/debug/fault" -d "$sched" | grep -q '"armed":true' \
    || { echo "arming the fault schedule failed" >&2; exit 1; }

  saw_reject=""
  for _ in $(seq 20); do
    out=$(insert "$id")
    if echo "$out" | grep -q '"inserted":1'; then
      acked="$acked $id"
    elif echo "$out" | grep -q '"code":'; then
      saw_reject=1
    else
      echo "insert returned an untyped failure: $out" >&2; exit 1
    fi
    id=$((id + 1))
    read_ok || { echo "read failed during a fault window" >&2; exit 1; }
  done
  [ -n "$saw_reject" ] || { echo "no insert tripped the armed fault" >&2; exit 1; }

  curl -fsS -X DELETE "http://$ops/debug/fault" >/dev/null
  wait_http "http://$addr/readyz"
done

echo "# daemon healed in place: recovery counters advanced, state is healthy"
metrics=$(curl -fsS "http://$ops/metrics")
metric() { echo "$metrics" | grep "^$1 " | awk '{print $2}'; }
deg=$(metric gaussd_degraded_total)
rec=$(metric gaussd_recoveries_total)
state=$(metric gaussd_serving_state)
[ "${deg%%.*}" -ge 1 ] 2>/dev/null || { echo "gaussd_degraded_total=$deg, want >=1" >&2; exit 1; }
[ "${rec%%.*}" -ge 1 ] 2>/dev/null || { echo "gaussd_recoveries_total=$rec, want >=1" >&2; exit 1; }
[ "${state%%.*}" = "0" ] || { echo "gaussd_serving_state=$state, want 0 (healthy)" >&2; exit 1; }

echo "# post-heal insert acknowledges at full rate"
insert "$id" | grep -q '"inserted":1' \
  || { echo "insert after the heal did not acknowledge" >&2; exit 1; }
acked="$acked $id"

echo "# every acknowledged insert is answerable on the healed daemon"
for a in $acked; do
  "$tmp/bin/gausscli" -addr "$addr" -kmliq "$(qvec "$a")" -k 1 \
    | grep -q "object $a " \
    || { echo "acknowledged insert $a not found after heal" >&2; exit 1; }
done
echo "# $(echo "$acked" | wc -w) acknowledged inserts verified"

echo "# scrubber ran clean on healthy storage"
runs=$(metric gausstree_scrub_runs_total)
errs=$(metric gausstree_scrub_errors_total)
[ "${runs%%.*}" -ge 1 ] 2>/dev/null || { echo "gausstree_scrub_runs_total=$runs, want >=1" >&2; exit 1; }
[ "${errs%%.*}" -eq 0 ] 2>/dev/null || { echo "gausstree_scrub_errors_total=$errs, want 0" >&2; exit 1; }

echo "# graceful shutdown"
kill -TERM "$pid"
wait "$pid"
pid=""

echo "# acknowledged inserts survive a cold reopen"
for a in $acked; do
  "$tmp/bin/gausscli" -index "$tmp/ds.gtree" -kmliq "$(qvec "$a")" -k 1 \
    | grep -q "object $a " \
    || { echo "acknowledged insert $a lost across restart" >&2; exit 1; }
done

echo "# a daemon without -chaos refuses /debug/fault"
addr2="127.0.0.1:${CHAOS_SMOKE_PORT2:-18454}"
ops2="127.0.0.1:${CHAOS_SMOKE_OPS_PORT2:-18455}"
"$tmp/bin/gaussd" -index "$tmp/ds.gtree" -addr "$addr2" -ops-addr "$ops2" &
pid=$!
wait_http "http://$addr2/healthz"
code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST "http://$ops2/debug/fault" \
  -d '{"ops":{"wal_write":{"prob":1}}}')
[ "$code" = "404" ] || { echo "/debug/fault without -chaos returned $code, want 404" >&2; exit 1; }
kill -TERM "$pid"
wait "$pid"
pid=""

echo "chaos smoke: OK"
