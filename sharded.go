package gausstree

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/gauss-tree/gausstree/internal/core"
	"github.com/gauss-tree/gausstree/internal/pagefile"
	"github.com/gauss-tree/gausstree/internal/shard"
)

// PartitionPolicy selects how a sharded tree routes vectors to shards.
type PartitionPolicy uint8

const (
	// PartitionHashByID (the default) hashes the object id, so placement is
	// stable across restarts and repeated observations of one object stay
	// colocated; deletes touch exactly one shard.
	PartitionHashByID PartitionPolicy = iota
	// PartitionRoundRobin rotates over shards for perfectly even growth
	// regardless of id distribution; deletes must probe every shard.
	PartitionRoundRobin
)

func (p PartitionPolicy) name() string {
	if p == PartitionRoundRobin {
		return "round-robin"
	}
	return "hash-id"
}

// ShardedQueryStats extends QueryStats with the sharded execution profile:
// the per-shard breakdown of the aggregated counters and the number of
// cross-shard denominator merge rounds the query needed (1 = the per-shard
// certification was sufficient on the first pass). It is an alias of the
// shard engine's stats type (its embedded query.Stats is QueryStats).
type ShardedQueryStats = shard.Stats

// shardedManifest is the tiny JSON descriptor a durable sharded index keeps
// next to its per-shard page files: everything OpenSharded needs that the
// shard files themselves do not record.
type shardedManifest struct {
	Version   int
	Shards    int
	Partition string
}

const shardedManifestName = "shards.json"

// shardFileName returns the page-file name of one shard.
func shardFileName(i int) string { return fmt.Sprintf("shard-%04d.gtree", i) }

// Sharded is a Gauss-tree partitioned across n independent shards, each its
// own core tree (and, when durable, its own page file). Queries fan out to
// every shard concurrently and merge per-shard Bayes-denominator intervals
// by log-sum-exp, so probabilities and their certified bounds are exactly
// what a single tree over the union of the data would report. It is safe
// for concurrent use by multiple goroutines.
type Sharded struct {
	mu   sync.RWMutex
	eng  *shard.Engine
	mgrs []*pagefile.Manager
	opts Options
	dir  string
}

// NewSharded creates an empty sharded Gauss-tree with n shards for vectors
// of the given dimension. With Options.Path the index lives in a directory
// holding one durable page file per shard plus a manifest; a directory that
// already holds a sharded index is rejected (reattach with OpenSharded).
// Options.Partition selects the mutation-routing policy.
func NewSharded(dim, n int, opts ...Options) (*Sharded, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	o.fillDefaults()
	if n <= 0 {
		return nil, fmt.Errorf("gausstree: shard count must be positive, got %d", n)
	}

	var dir string
	if o.Path != "" {
		dir = o.Path
		if _, err := os.Stat(filepath.Join(dir, shardedManifestName)); err == nil {
			return nil, fmt.Errorf("gausstree: %s already holds a sharded index (use OpenSharded)", dir)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		// No manifest means no create ever completed here (the manifest is
		// written last), so any shard files present are provably debris
		// from a crashed or failed NewSharded. Reclaim them — their
		// committed headers would otherwise make pagefile.CreateFile refuse
		// the path forever.
		debris, err := filepath.Glob(filepath.Join(dir, "shard-*.gtree"))
		if err != nil {
			return nil, err
		}
		for _, f := range debris {
			if err := os.Remove(f); err != nil {
				return nil, err
			}
		}
	}

	trees := make([]*core.Tree, n)
	mgrs := make([]*pagefile.Manager, n)
	fail := func(err error) (*Sharded, error) {
		for _, m := range mgrs {
			if m != nil {
				m.Close()
			}
		}
		if dir != "" {
			// Remove the partial layout so a retry starts clean instead of
			// tripping over committed shard files (every file here was
			// created by this call — debris was reclaimed above).
			for i := 0; i < n; i++ {
				os.Remove(filepath.Join(dir, shardFileName(i)))
			}
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		var backend pagefile.Backend
		if dir != "" {
			fb, err := pagefile.CreateFile(filepath.Join(dir, shardFileName(i)), o.PageSize)
			if err != nil {
				return fail(err)
			}
			backend = fb
		} else {
			backend = pagefile.NewMemBackend(o.PageSize)
		}
		mgr, err := pagefile.NewManager(backend, o.PageSize, pagefile.WithCacheBytes(o.CacheBytes/n), pagefile.WithCacheShards(o.CacheShards))
		if err != nil {
			backend.Close()
			return fail(err)
		}
		mgrs[i] = mgr
		if trees[i], err = core.New(mgr, dim, core.Config{Combiner: o.Combiner, LeafFormat: o.LeafFormat}); err != nil {
			return fail(err)
		}
	}
	part, err := shard.ByName(o.Partition.name(), 0)
	if err != nil {
		return fail(err)
	}
	eng, err := shard.New(trees, part)
	if err != nil {
		return fail(err)
	}
	if dir != "" {
		// The manifest is written last and atomically (temp file + rename):
		// its presence implies every shard file was created and committed,
		// so a crash mid-create leaves only reclaimable debris (see above),
		// never a torn index.
		m, err := json.Marshal(shardedManifest{Version: 1, Shards: n, Partition: o.Partition.name()})
		if err != nil {
			return fail(err)
		}
		tmp := filepath.Join(dir, shardedManifestName+".tmp")
		if err := os.WriteFile(tmp, m, 0o644); err != nil {
			return fail(err)
		}
		if err := os.Rename(tmp, filepath.Join(dir, shardedManifestName)); err != nil {
			os.Remove(tmp)
			return fail(err)
		}
	}
	return &Sharded{eng: eng, mgrs: mgrs, opts: o, dir: dir}, nil
}

// OpenSharded reattaches a sharded Gauss-tree previously persisted in dir:
// the manifest restores the shard count and partition policy, and each
// shard's page file restores its own page size, σ-combiner and tree
// geometry (crash-safely, as with Open). Options may tune the cache budget
// and probability accuracy.
func OpenSharded(dir string, opts ...Options) (*Sharded, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	o.Path = dir
	o.fillDefaults()

	raw, err := os.ReadFile(filepath.Join(dir, shardedManifestName))
	if err != nil {
		return nil, fmt.Errorf("gausstree: %s holds no sharded index manifest: %w", dir, err)
	}
	var m shardedManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("gausstree: corrupt sharded manifest: %w", err)
	}
	if m.Version != 1 {
		return nil, fmt.Errorf("gausstree: unsupported sharded manifest version %d", m.Version)
	}
	if m.Shards <= 0 {
		return nil, fmt.Errorf("gausstree: sharded manifest names %d shards", m.Shards)
	}

	trees := make([]*core.Tree, m.Shards)
	mgrs := make([]*pagefile.Manager, m.Shards)
	fail := func(err error) (*Sharded, error) {
		for _, mg := range mgrs {
			if mg != nil {
				mg.Close()
			}
		}
		return nil, err
	}
	total := 0
	for i := 0; i < m.Shards; i++ {
		fb, err := pagefile.OpenFile(filepath.Join(dir, shardFileName(i)))
		if err != nil {
			return fail(err)
		}
		mgr, err := pagefile.NewManager(fb, fb.PageSize(), pagefile.WithCacheBytes(o.CacheBytes/m.Shards), pagefile.WithCacheShards(o.CacheShards))
		if err != nil {
			fb.Close()
			return fail(err)
		}
		mgrs[i] = mgr
		if trees[i], err = core.Open(mgr); err != nil {
			return fail(err)
		}
		total += trees[i].Len()
	}
	// Stateful partitioners (round-robin) resume their rotation from the
	// stored vector count.
	part, err := shard.ByName(m.Partition, uint64(total))
	if err != nil {
		return fail(err)
	}
	eng, err := shard.New(trees, part)
	if err != nil {
		return fail(err)
	}
	return &Sharded{eng: eng, mgrs: mgrs, opts: o, dir: dir}, nil
}

// NumShards returns the number of shards.
func (s *Sharded) NumShards() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.eng == nil {
		return 0
	}
	return s.eng.NumShards()
}

// Dim returns the feature dimensionality of the index.
func (s *Sharded) Dim() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.eng == nil {
		return 0
	}
	return s.eng.Dim()
}

// Len returns the total number of stored vectors across all shards.
func (s *Sharded) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.eng == nil {
		return 0
	}
	return s.eng.Len()
}

// LeafFormat returns the leaf storage format the shards write (restored
// from the shard files on OpenSharded).
func (s *Sharded) LeafFormat() LeafFormat {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.eng == nil {
		return LeafExact
	}
	return s.eng.Tree(0).LeafFormat()
}

// Insert adds a vector to the shard its partition policy selects. Durable
// shards commit crash-safely exactly like an unsharded Tree.
func (s *Sharded) Insert(v Vector) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.eng == nil {
		return ErrClosed
	}
	return s.eng.Insert(v)
}

// InsertAll adds a batch, loading the per-shard groups concurrently.
func (s *Sharded) InsertAll(vs []Vector) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.eng == nil {
		return ErrClosed
	}
	return s.eng.InsertAll(vs)
}

// BulkLoad partitions the vector set and bulk-loads all shards concurrently
// (every shard must be empty).
func (s *Sharded) BulkLoad(vs []Vector) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.eng == nil {
		return ErrClosed
	}
	return s.eng.BulkLoad(vs)
}

// Delete removes one stored copy of the exact vector and reports whether one
// was found. Hash-partitioned trees probe one shard; round-robin probes all.
func (s *Sharded) Delete(v Vector) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.eng == nil {
		return false, ErrClosed
	}
	return s.eng.Delete(v)
}

// KMostLikely answers a k-most-likely identification query across all
// shards, with probabilities certified to the configured accuracy by the
// merged cross-shard denominator interval. Results are ordered by
// descending probability.
func (s *Sharded) KMostLikely(q Vector, k int) ([]Match, error) {
	ms, _, err := s.KMLIQContext(context.Background(), q, k)
	return ms, err
}

// KMLIQContext is KMostLikely with cancellation and per-shard statistics.
func (s *Sharded) KMLIQContext(ctx context.Context, q Vector, k int) ([]Match, ShardedQueryStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.eng == nil {
		return nil, ShardedQueryStats{}, ErrClosed
	}
	if err := errors.Join(checkQueryVector(q, s.eng.Dim()), checkK(k)); err != nil {
		return nil, ShardedQueryStats{}, err
	}
	res, st, err := s.eng.KMLIQDetail(ctx, q, k, s.opts.Accuracy)
	return toMatches(res), st, err
}

// KMostLikelyRanked answers a k-MLIQ without probability values (the
// cheapest ranking query; no denominator merge is needed because the global
// density order is the merge of the per-shard orders).
func (s *Sharded) KMostLikelyRanked(q Vector, k int) ([]Match, error) {
	ms, _, err := s.KMLIQRankedContext(context.Background(), q, k)
	return ms, err
}

// KMLIQRankedContext is KMostLikelyRanked with cancellation and per-shard
// statistics.
func (s *Sharded) KMLIQRankedContext(ctx context.Context, q Vector, k int) ([]Match, ShardedQueryStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.eng == nil {
		return nil, ShardedQueryStats{}, ErrClosed
	}
	if err := errors.Join(checkQueryVector(q, s.eng.Dim()), checkK(k)); err != nil {
		return nil, ShardedQueryStats{}, err
	}
	res, st, err := s.eng.KMLIQRankedDetail(ctx, q, k)
	return toMatches(res), st, err
}

// Threshold answers a threshold identification query across all shards:
// every object whose global identification probability reaches pTheta,
// decided exactly via iterative cross-shard denominator refinement.
func (s *Sharded) Threshold(q Vector, pTheta float64) ([]Match, error) {
	ms, _, err := s.TIQContext(context.Background(), q, pTheta)
	return ms, err
}

// TIQContext is Threshold with cancellation and per-shard statistics.
func (s *Sharded) TIQContext(ctx context.Context, q Vector, pTheta float64) ([]Match, ShardedQueryStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.eng == nil {
		return nil, ShardedQueryStats{}, ErrClosed
	}
	if err := errors.Join(checkQueryVector(q, s.eng.Dim()), checkPTheta(pTheta)); err != nil {
		return nil, ShardedQueryStats{}, err
	}
	res, st, err := s.eng.TIQDetail(ctx, q, pTheta, s.opts.Accuracy)
	return toMatches(res), st, err
}

// ForEach visits every stored vector, shard by shard.
func (s *Sharded) ForEach(fn func(Vector) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.eng == nil {
		return ErrClosed
	}
	return s.eng.ForEach(fn)
}

// CheckInvariants verifies the structural invariants of every shard.
func (s *Sharded) CheckInvariants() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.eng == nil {
		return ErrClosed
	}
	for i := 0; i < s.eng.NumShards(); i++ {
		if err := s.eng.Tree(i).CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Stats reports the summed I/O counters of all shard page managers.
func (s *Sharded) Stats() (pagefile.Stats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.eng == nil {
		return pagefile.Stats{}, ErrClosed
	}
	var sum pagefile.Stats
	for _, m := range s.mgrs {
		sum = sum.Add(m.Stats())
	}
	return sum, nil
}

// ResetStats zeroes the I/O counters of every shard.
func (s *Sharded) ResetStats() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.eng == nil {
		return ErrClosed
	}
	for _, m := range s.mgrs {
		m.ResetStats()
	}
	return nil
}

// Sync flushes every shard's written pages to stable storage.
func (s *Sharded) Sync() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.eng == nil {
		return ErrClosed
	}
	var errs []error
	for i, m := range s.mgrs {
		if err := m.Sync(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Close flushes and releases every shard. The tree is unusable afterwards;
// a durable sharded index can be reattached with OpenSharded.
func (s *Sharded) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.eng == nil {
		return nil
	}
	s.eng = nil
	var errs []error
	for i, m := range s.mgrs {
		if err := m.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}
