package gausstree

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"github.com/gauss-tree/gausstree/internal/core"
	"github.com/gauss-tree/gausstree/internal/fault"
	"github.com/gauss-tree/gausstree/internal/pagefile"
	"github.com/gauss-tree/gausstree/internal/shard"
	"github.com/gauss-tree/gausstree/internal/wal"
)

// PartitionPolicy selects how a sharded tree routes vectors to shards.
type PartitionPolicy uint8

const (
	// PartitionHashByID (the default) hashes the object id, so placement is
	// stable across restarts and repeated observations of one object stay
	// colocated; deletes touch exactly one shard.
	PartitionHashByID PartitionPolicy = iota
	// PartitionRoundRobin rotates over shards for perfectly even growth
	// regardless of id distribution; deletes must probe every shard.
	PartitionRoundRobin
)

func (p PartitionPolicy) name() string {
	if p == PartitionRoundRobin {
		return "round-robin"
	}
	return "hash-id"
}

// ShardedQueryStats extends QueryStats with the sharded execution profile:
// the per-shard breakdown of the aggregated counters and the number of
// cross-shard denominator merge rounds the query needed (1 = the per-shard
// certification was sufficient on the first pass). It is an alias of the
// shard engine's stats type (its embedded query.Stats is QueryStats).
type ShardedQueryStats = shard.Stats

// shardedManifest is the tiny JSON descriptor a durable sharded index keeps
// next to its per-shard page files: everything OpenSharded needs that the
// shard files themselves do not record.
type shardedManifest struct {
	Version   int
	Shards    int
	Partition string
}

const shardedManifestName = "shards.json"

// shardFileName returns the page-file name of one shard.
func shardFileName(i int) string { return fmt.Sprintf("shard-%04d.gtree", i) }

// shardWALName returns the write-ahead-log file name of one shard.
func shardWALName(i int) string { return fmt.Sprintf("shard-%04d.wal", i) }

// shardedState bundles the fan-out engine with every shard's page manager
// and WAL; like the unsharded treeState it is published through an atomic
// pointer so reads never take a lock.
type shardedState struct {
	eng  *shard.Engine
	mgrs []*pagefile.Manager
	wals []*wal.Log // per shard; nil entries for memory-backed shards
}

// Sharded is a Gauss-tree partitioned across n independent shards, each its
// own core tree (and, when durable, its own page file plus write-ahead
// log). Queries fan out to every shard concurrently and merge per-shard
// Bayes-denominator intervals by log-sum-exp, so probabilities and their
// certified bounds are exactly what a single tree over the union of the
// data would report. It is safe for concurrent use by multiple goroutines;
// as with Tree, queries run against pinned per-shard snapshots and never
// block on mutations.
type Sharded struct {
	mu   sync.Mutex // serializes mutations and Close; never held by reads
	st   atomic.Pointer[shardedState]
	opts Options
	dir  string
}

// NewSharded creates an empty sharded Gauss-tree with n shards for vectors
// of the given dimension. With Options.Path the index lives in a directory
// holding one durable page file and WAL per shard plus a manifest; a
// directory that already holds a sharded index is rejected (reattach with
// OpenSharded). Options.Partition selects the mutation-routing policy.
// Options.Ingest is ignored — merge-ingest mode is unsharded-only.
func NewSharded(dim, n int, opts ...Options) (*Sharded, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	o.fillDefaults()
	if n <= 0 {
		return nil, fmt.Errorf("%w: shard count must be positive, got %d", ErrInvalidOptions, n)
	}

	var dir string
	if o.Path != "" {
		dir = o.Path
		if _, err := os.Stat(filepath.Join(dir, shardedManifestName)); err == nil {
			return nil, fmt.Errorf("gausstree: %s already holds a sharded index (use OpenSharded)", dir)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		// No manifest means no create ever completed here (the manifest is
		// written last), so any shard files present are provably debris
		// from a crashed or failed NewSharded. Reclaim them — their
		// committed headers would otherwise make pagefile.CreateFile refuse
		// the path forever.
		debris, err := filepath.Glob(filepath.Join(dir, "shard-*.gtree"))
		if err != nil {
			return nil, err
		}
		logs, err := filepath.Glob(filepath.Join(dir, "shard-*.wal"))
		if err != nil {
			return nil, err
		}
		for _, f := range append(debris, logs...) {
			if err := os.Remove(f); err != nil {
				return nil, err
			}
		}
	}

	trees := make([]*core.Tree, n)
	mgrs := make([]*pagefile.Manager, n)
	wals := make([]*wal.Log, n)
	fail := func(err error) (*Sharded, error) {
		for _, l := range wals {
			if l != nil {
				l.Close()
			}
		}
		for _, m := range mgrs {
			if m != nil {
				m.Close()
			}
		}
		if dir != "" {
			// Remove the partial layout so a retry starts clean instead of
			// tripping over committed shard files (every file here was
			// created by this call — debris was reclaimed above).
			for i := 0; i < n; i++ {
				os.Remove(filepath.Join(dir, shardFileName(i)))
				os.Remove(filepath.Join(dir, shardWALName(i)))
			}
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		var backend pagefile.Backend
		if dir != "" {
			fb, err := pagefile.CreateFile(filepath.Join(dir, shardFileName(i)), o.PageSize)
			if err != nil {
				return fail(err)
			}
			backend = fb
		} else {
			backend = pagefile.NewMemBackend(o.PageSize)
		}
		// All shards share the one injector, so a schedule's counters and
		// fault caps aggregate across the whole index.
		backend = fault.WrapBackend(backend, o.Fault)
		mgr, err := pagefile.NewManager(backend, o.PageSize, pagefile.WithCacheBytes(o.CacheBytes/n), pagefile.WithCacheShards(o.CacheShards))
		if err != nil {
			backend.Close()
			return fail(err)
		}
		mgrs[i] = mgr
		if trees[i], err = core.New(mgr, dim, core.Config{Combiner: o.Combiner, LeafFormat: o.LeafFormat}); err != nil {
			return fail(err)
		}
		if dir != "" {
			l, err := wal.Create(filepath.Join(dir, shardWALName(i)), dim, wal.Options{Interval: o.CommitLatency, Fault: walFault(o.Fault)})
			if err != nil {
				return fail(err)
			}
			wals[i] = l
			if err := trees[i].SetWAL(l); err != nil {
				return fail(err)
			}
		}
	}
	part, err := shard.ByName(o.Partition.name(), 0)
	if err != nil {
		return fail(err)
	}
	eng, err := shard.New(trees, part)
	if err != nil {
		return fail(err)
	}
	if dir != "" {
		// The manifest is written last and atomically (temp file + rename):
		// its presence implies every shard file was created and committed,
		// so a crash mid-create leaves only reclaimable debris (see above),
		// never a torn index.
		m, err := json.Marshal(shardedManifest{Version: 1, Shards: n, Partition: o.Partition.name()})
		if err != nil {
			return fail(err)
		}
		tmp := filepath.Join(dir, shardedManifestName+".tmp")
		if err := os.WriteFile(tmp, m, 0o644); err != nil {
			return fail(err)
		}
		if err := os.Rename(tmp, filepath.Join(dir, shardedManifestName)); err != nil {
			os.Remove(tmp)
			return fail(err)
		}
	}
	s := &Sharded{opts: o, dir: dir}
	s.st.Store(&shardedState{eng: eng, mgrs: mgrs, wals: wals})
	return s, nil
}

// OpenSharded reattaches a sharded Gauss-tree previously persisted in dir:
// the manifest restores the shard count and partition policy, and each
// shard's page file restores its own page size, σ-combiner and tree
// geometry. Recovery is crash-safe per shard exactly as with Open: each
// shard replays its own write-ahead-log tail over its last committed
// checkpoint. Options may tune the cache budget and probability accuracy.
func OpenSharded(dir string, opts ...Options) (*Sharded, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	o.Path = dir
	o.fillDefaults()

	raw, err := os.ReadFile(filepath.Join(dir, shardedManifestName))
	if err != nil {
		return nil, fmt.Errorf("gausstree: %s holds no sharded index manifest: %w", dir, err)
	}
	var m shardedManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("gausstree: corrupt sharded manifest: %w", err)
	}
	if m.Version != 1 {
		return nil, fmt.Errorf("gausstree: unsupported sharded manifest version %d", m.Version)
	}
	if m.Shards <= 0 {
		return nil, fmt.Errorf("gausstree: sharded manifest names %d shards", m.Shards)
	}

	trees := make([]*core.Tree, m.Shards)
	mgrs := make([]*pagefile.Manager, m.Shards)
	wals := make([]*wal.Log, m.Shards)
	fail := func(err error) (*Sharded, error) {
		for _, l := range wals {
			if l != nil {
				l.Close()
			}
		}
		for _, mg := range mgrs {
			if mg != nil {
				mg.Close()
			}
		}
		return nil, err
	}
	total := 0
	for i := 0; i < m.Shards; i++ {
		fb, err := pagefile.OpenFile(filepath.Join(dir, shardFileName(i)))
		if err != nil {
			return fail(err)
		}
		mgr, err := pagefile.NewManager(fault.WrapBackend(fb, o.Fault), fb.PageSize(), pagefile.WithCacheBytes(o.CacheBytes/m.Shards), pagefile.WithCacheShards(o.CacheShards))
		if err != nil {
			fb.Close()
			return fail(err)
		}
		mgrs[i] = mgr
		if trees[i], err = core.Open(mgr); err != nil {
			return fail(err)
		}
		l, tail, err := wal.Open(filepath.Join(dir, shardWALName(i)), trees[i].Dim(), trees[i].AppliedLSN(), wal.Options{Interval: o.CommitLatency, Fault: walFault(o.Fault)})
		if err != nil {
			return fail(err)
		}
		wals[i] = l
		if err := trees[i].ApplyWALTail(tail); err != nil {
			return fail(err)
		}
		if err := trees[i].SetWAL(l); err != nil {
			return fail(err)
		}
		total += trees[i].Len()
	}
	// Stateful partitioners (round-robin) resume their rotation from the
	// stored vector count.
	part, err := shard.ByName(m.Partition, uint64(total))
	if err != nil {
		return fail(err)
	}
	eng, err := shard.New(trees, part)
	if err != nil {
		return fail(err)
	}
	s := &Sharded{opts: o, dir: dir}
	s.st.Store(&shardedState{eng: eng, mgrs: mgrs, wals: wals})
	return s, nil
}

// state returns the live engine state or ErrClosed (lock-free).
func (s *Sharded) state() (*shardedState, error) {
	st := s.st.Load()
	if st == nil {
		return nil, ErrClosed
	}
	return st, nil
}

// waitDurable awaits WAL durability of the last mutation on every shard
// (instant for shards whose log is already flushed, and for memory-backed
// shards). Called after releasing the writer lock so concurrent mutations
// can join the same group commits. A shard whose log died during the wait
// is poisoned right away — under the writer lock, matching Tree.waitDurable
// — so every later mutation uniformly fails wrapping ErrPoisoned.
func (s *Sharded) waitDurable(st *shardedState) error {
	var errs []error
	var dead map[int]error
	for i := 0; i < st.eng.NumShards(); i++ {
		if err := st.eng.Tree(i).WaitDurable(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
			if errors.Is(err, wal.ErrFailed) {
				if dead == nil {
					dead = make(map[int]error)
				}
				dead[i] = err
			}
		}
	}
	if dead != nil {
		s.mu.Lock()
		for i, err := range dead {
			st.eng.Tree(i).Poison(err)
		}
		s.mu.Unlock()
	}
	return errors.Join(errs...)
}

// NumShards returns the number of shards (0 after Close).
func (s *Sharded) NumShards() int {
	st := s.st.Load()
	if st == nil {
		return 0
	}
	return st.eng.NumShards()
}

// Dim returns the feature dimensionality of the index (0 after Close).
func (s *Sharded) Dim() int {
	st := s.st.Load()
	if st == nil {
		return 0
	}
	return st.eng.Dim()
}

// Len returns the total number of stored vectors across all shards.
func (s *Sharded) Len() int {
	st := s.st.Load()
	if st == nil {
		return 0
	}
	return st.eng.Len()
}

// LeafFormat returns the leaf storage format the shards write (restored
// from the shard files on OpenSharded).
func (s *Sharded) LeafFormat() LeafFormat {
	st := s.st.Load()
	if st == nil {
		return LeafExact
	}
	return st.eng.Tree(0).LeafFormat()
}

// SnapshotEpoch returns the sum of the per-shard snapshot epochs: a
// monotone counter of committed mutations across the whole index (see
// Tree.SnapshotEpoch).
func (s *Sharded) SnapshotEpoch() uint64 {
	st := s.st.Load()
	if st == nil {
		return 0
	}
	var sum uint64
	for i := 0; i < st.eng.NumShards(); i++ {
		sum += st.eng.Tree(i).SnapshotEpoch()
	}
	return sum
}

// WALStats reports the summed write-ahead-log counters of all shards
// (AppendedLSN and DurableLSN are the highest per-shard values — LSN
// sequences are per shard). ok is false for memory-backed or closed
// indexes.
func (s *Sharded) WALStats() (ws WALStats, ok bool) {
	st := s.st.Load()
	if st == nil {
		return WALStats{}, false
	}
	for _, l := range st.wals {
		if l == nil {
			continue
		}
		ok = true
		w := l.Stats()
		ws.Fsyncs += w.Fsyncs
		ws.Records += w.Records
		if w.AppendedLSN > ws.AppendedLSN {
			ws.AppendedLSN = w.AppendedLSN
		}
		if w.DurableLSN > ws.DurableLSN {
			ws.DurableLSN = w.DurableLSN
		}
	}
	if ws.Fsyncs > 0 {
		ws.MeanGroupSize = float64(ws.Records) / float64(ws.Fsyncs)
	}
	return ws, ok
}

// PinnedReaders returns the number of outstanding snapshot-reader epoch
// pins summed over all shards.
func (s *Sharded) PinnedReaders() int {
	st := s.st.Load()
	if st == nil {
		return 0
	}
	n := 0
	for i := 0; i < st.eng.NumShards(); i++ {
		n += st.eng.Tree(i).Manager().PinnedReaders()
	}
	return n
}

// OldestPinnedEpoch returns the summed oldest pinned reader epochs of all
// shards, mirroring SnapshotEpoch's summed convention: the difference
// SnapshotEpoch()−OldestPinnedEpoch() is the total reclamation lag across
// shards (0 when no reader lags anywhere).
func (s *Sharded) OldestPinnedEpoch() uint64 {
	st := s.st.Load()
	if st == nil {
		return 0
	}
	var sum uint64
	for i := 0; i < st.eng.NumShards(); i++ {
		sum += st.eng.Tree(i).Manager().OldestPin()
	}
	return sum
}

// LimboPages returns the number of freed pages awaiting reclamation summed
// over all shards.
func (s *Sharded) LimboPages() int {
	st := s.st.Load()
	if st == nil {
		return 0
	}
	n := 0
	for i := 0; i < st.eng.NumShards(); i++ {
		n += st.eng.Tree(i).Manager().LimboPages()
	}
	return n
}

// Insert adds a vector to the shard its partition policy selects. Like
// Tree.Insert it returns once the mutation's WAL record is durable (group
// commit) on file-backed indexes.
func (s *Sharded) Insert(v Vector) error {
	s.mu.Lock()
	st := s.st.Load()
	if st == nil {
		s.mu.Unlock()
		return ErrClosed
	}
	if err := checkMutationVector(v, st.eng.Dim()); err != nil {
		s.mu.Unlock()
		return err
	}
	err := st.eng.Insert(v)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.waitDurable(st)
}

// InsertAll adds a batch, loading the per-shard groups concurrently, and
// returns how many vectors are durably applied. Unlike Tree.InsertAll the
// durable set on error is a per-shard union, not a prefix of vs: each
// shard applies its own group in order, so retrying the whole batch after
// an error may re-insert some vectors (duplicates are permitted and can be
// Deleted). On success the count is len(vs) and the whole batch is durable.
func (s *Sharded) InsertAll(vs []Vector) (int, error) {
	s.mu.Lock()
	st := s.st.Load()
	if st == nil {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	if err := checkMutationVectors(vs, st.eng.Dim()); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	n, err := st.eng.InsertAll(vs)
	s.mu.Unlock()
	return n, err
}

// BulkLoad partitions the vector set and bulk-loads all shards concurrently
// (every shard must be empty). Like Tree.BulkLoad it commits a full
// checkpoint per shard and is durable on return.
func (s *Sharded) BulkLoad(vs []Vector) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.st.Load()
	if st == nil {
		return ErrClosed
	}
	if err := checkMutationVectors(vs, st.eng.Dim()); err != nil {
		return err
	}
	return st.eng.BulkLoad(vs)
}

// Delete removes one stored copy of the exact vector and reports whether one
// was found. Hash-partitioned trees probe one shard; round-robin probes all.
func (s *Sharded) Delete(v Vector) (bool, error) {
	s.mu.Lock()
	st := s.st.Load()
	if st == nil {
		s.mu.Unlock()
		return false, ErrClosed
	}
	if err := checkMutationVector(v, st.eng.Dim()); err != nil {
		s.mu.Unlock()
		return false, err
	}
	found, err := st.eng.Delete(v)
	s.mu.Unlock()
	if !found || err != nil {
		return found, err
	}
	return true, s.waitDurable(st)
}

// KMostLikely answers a k-most-likely identification query across all
// shards, with probabilities certified to the configured accuracy by the
// merged cross-shard denominator interval. Results are ordered by
// descending probability.
func (s *Sharded) KMostLikely(q Vector, k int) ([]Match, error) {
	//lint:ignore ctxflow KMostLikely is the documented context-free compat API; the Context form is the bounded one.
	ms, _, err := s.KMLIQContext(context.Background(), q, k)
	return ms, err
}

// KMLIQContext is KMostLikely with cancellation and per-shard statistics.
// Like every query it runs lock-free against pinned per-shard snapshots,
// concurrently with mutations.
func (s *Sharded) KMLIQContext(ctx context.Context, q Vector, k int) ([]Match, ShardedQueryStats, error) {
	st, err := s.state()
	if err != nil {
		return nil, ShardedQueryStats{}, err
	}
	if err := errors.Join(checkQueryVector(q, st.eng.Dim()), checkK(k)); err != nil {
		return nil, ShardedQueryStats{}, err
	}
	res, qs, err := st.eng.KMLIQDetail(ctx, q, k, s.opts.Accuracy)
	return toMatches(res), qs, err
}

// KMostLikelyRanked answers a k-MLIQ without probability values (the
// cheapest ranking query; no denominator merge is needed because the global
// density order is the merge of the per-shard orders).
func (s *Sharded) KMostLikelyRanked(q Vector, k int) ([]Match, error) {
	//lint:ignore ctxflow KMostLikelyRanked is the documented context-free compat API; the Context form is the bounded one.
	ms, _, err := s.KMLIQRankedContext(context.Background(), q, k)
	return ms, err
}

// KMLIQRankedContext is KMostLikelyRanked with cancellation and per-shard
// statistics.
func (s *Sharded) KMLIQRankedContext(ctx context.Context, q Vector, k int) ([]Match, ShardedQueryStats, error) {
	st, err := s.state()
	if err != nil {
		return nil, ShardedQueryStats{}, err
	}
	if err := errors.Join(checkQueryVector(q, st.eng.Dim()), checkK(k)); err != nil {
		return nil, ShardedQueryStats{}, err
	}
	res, qs, err := st.eng.KMLIQRankedDetail(ctx, q, k)
	return toMatches(res), qs, err
}

// Threshold answers a threshold identification query across all shards:
// every object whose global identification probability reaches pTheta,
// decided exactly via iterative cross-shard denominator refinement.
func (s *Sharded) Threshold(q Vector, pTheta float64) ([]Match, error) {
	//lint:ignore ctxflow Threshold is the documented context-free compat API; the Context form is the bounded one.
	ms, _, err := s.TIQContext(context.Background(), q, pTheta)
	return ms, err
}

// TIQContext is Threshold with cancellation and per-shard statistics.
func (s *Sharded) TIQContext(ctx context.Context, q Vector, pTheta float64) ([]Match, ShardedQueryStats, error) {
	st, err := s.state()
	if err != nil {
		return nil, ShardedQueryStats{}, err
	}
	if err := errors.Join(checkQueryVector(q, st.eng.Dim()), checkPTheta(pTheta)); err != nil {
		return nil, ShardedQueryStats{}, err
	}
	res, qs, err := st.eng.TIQDetail(ctx, q, pTheta, s.opts.Accuracy)
	return toMatches(res), qs, err
}

// ForEach visits every stored vector, shard by shard; each shard
// contributes one commit-consistent snapshot.
func (s *Sharded) ForEach(fn func(Vector) error) error {
	st, err := s.state()
	if err != nil {
		return err
	}
	return st.eng.ForEach(fn)
}

// CheckInvariants verifies the structural invariants of every shard.
func (s *Sharded) CheckInvariants() error {
	st, err := s.state()
	if err != nil {
		return err
	}
	for i := 0; i < st.eng.NumShards(); i++ {
		if err := st.eng.Tree(i).CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Stats reports the summed I/O counters of all shard page managers.
func (s *Sharded) Stats() (pagefile.Stats, error) {
	st, err := s.state()
	if err != nil {
		return pagefile.Stats{}, err
	}
	var sum pagefile.Stats
	for _, m := range st.mgrs {
		sum = sum.Add(m.Stats())
	}
	return sum, nil
}

// ResetStats zeroes the I/O counters of every shard.
func (s *Sharded) ResetStats() error {
	st, err := s.state()
	if err != nil {
		return err
	}
	for _, m := range st.mgrs {
		m.ResetStats()
	}
	return nil
}

// Sync is an explicit durability barrier: it checkpoints every shard's
// write-ahead log into its committed meta record and flushes the page
// files. Mutations are already durable when they return.
func (s *Sharded) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.st.Load()
	if st == nil {
		return ErrClosed
	}
	var errs []error
	for i := 0; i < st.eng.NumShards(); i++ {
		if err := st.eng.Tree(i).Checkpoint(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
			continue
		}
		if err := st.mgrs[i].Sync(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Quarantine makes every shard permanently write-inert without closing it;
// see Tree.Quarantine. Reads keep serving the last published per-shard
// snapshots until Close.
func (s *Sharded) Quarantine(cause error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.st.Load()
	if st == nil {
		return
	}
	for i := 0; i < st.eng.NumShards(); i++ {
		st.eng.Tree(i).Poison(cause)
		if st.wals[i] != nil {
			st.wals[i].Fail(cause)
		}
	}
}

// Close checkpoints every shard's write-ahead log, flushes and releases
// every shard. The tree is unusable afterwards; a durable sharded index can
// be reattached with OpenSharded. As with Tree.Close, queries still in
// flight fail with a storage-closed error.
func (s *Sharded) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.st.Swap(nil)
	if st == nil {
		return nil
	}
	var errs []error
	for i := 0; i < st.eng.NumShards(); i++ {
		if st.wals[i] != nil {
			// Checkpoint failure is not data loss (acknowledged mutations
			// are fsynced in the log and will be replayed); see Tree.Close.
			st.eng.Tree(i).Checkpoint()
			if err := st.wals[i].Close(); err != nil {
				errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
			}
		}
		if err := st.mgrs[i].Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}
