package gausstree

import (
	"github.com/gauss-tree/gausstree/internal/core"
	"github.com/gauss-tree/gausstree/internal/fault"
	"github.com/gauss-tree/gausstree/internal/wal"
)

// FaultInjector is the runtime fault-injection layer an index can be opened
// with (Options.Fault): it sits between the tree and its storage and, while
// armed with a FaultSchedule, turns page and write-ahead-log I/O into
// probabilistic or scheduled failures — clean errors, failed fsyncs, torn
// page writes, added latency. Disarmed it costs one atomic load per I/O.
// One injector may serve a whole sharded index; its counters aggregate
// across shards. See the internal fault package for the full semantics.
type FaultInjector = fault.Injector

// FaultSchedule is one armed fault configuration: per-operation rules plus
// an optional RNG seed (reproducible chaos) and duration (auto-disarm).
type FaultSchedule = fault.Schedule

// FaultRule says how one operation class misbehaves while armed.
type FaultRule = fault.Rule

// FaultOp classifies one injectable I/O operation.
type FaultOp = fault.Op

// FaultStatus is a point-in-time snapshot of an injector's armed schedule
// and per-operation counters, as served by gaussd's GET /debug/fault.
type FaultStatus = fault.Status

// The injectable operation classes a FaultSchedule may target.
const (
	FaultOpPageRead  = fault.OpPageRead
	FaultOpPageWrite = fault.OpPageWrite
	FaultOpPageSync  = fault.OpPageSync
	FaultOpMetaWrite = fault.OpMetaWrite
	FaultOpWALWrite  = fault.OpWALWrite
	FaultOpWALSync   = fault.OpWALSync
)

// FaultOps lists every injectable operation class.
func FaultOps() []FaultOp { return fault.Ops() }

// NewFaultInjector returns a disarmed injector, ready to be passed as
// Options.Fault and armed later on the live index.
func NewFaultInjector() *FaultInjector { return fault.New() }

// ErrInjected is the root of every error an armed FaultInjector produces;
// chaos harnesses use errors.Is to separate injected faults from real I/O
// errors.
var ErrInjected = fault.ErrInjected

// ErrInvalidSchedule is wrapped by every FaultInjector.Arm rejection of a
// malformed schedule (unknown op, probability outside [0,1], negative
// bounds). Test with errors.Is.
var ErrInvalidSchedule = fault.ErrInvalidSchedule

// ErrPoisoned is wrapped by every mutation refused because an earlier
// mutation failed mid-flight (an I/O error, not input validation) and
// poisoned the tree to protect its committed state. Reads keep serving the
// last committed snapshot; recovery is Close + Open (replaying the
// write-ahead log), which gaussd's supervisor performs automatically in
// degraded mode. Test with errors.Is.
var ErrPoisoned = core.ErrPoisoned

// walFault adapts the optional injector to the write-ahead log's fault
// hook. A nil *FaultInjector must become a nil interface value — a typed
// nil would make the log call hooks on a nil receiver.
func walFault(inj *FaultInjector) wal.FaultHook {
	if inj == nil {
		return nil
	}
	return inj
}
