// Command gausslint is the project's static-analysis multichecker: it runs
// the internal/analysis suite (epochorder, lockorder, poolreset, errwrap,
// ctxflow, waldurable, obsregister, plus the stock copylock/lostcancel/
// nilness/unusedwrite passes) over Go packages.
//
// Two modes:
//
//	gausslint ./...            standalone: load, analyze, print findings
//	go vet -vettool=gausslint  unitchecker: driven per package by cmd/go
//
// The vettool mode implements the cmd/go unit-checking protocol (-V=full,
// -flags, and a *.cfg JSON file per package), so `go vet
// -vettool=$(which gausslint) ./...` shares the build cache with ordinary
// vet runs. Exit status: 0 clean, 1 internal error, 2 findings (vettool
// convention).
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/gauss-tree/gausstree/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// cmd/go probes vettool capabilities before any package runs.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			return printVersion()
		case args[0] == "-flags":
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return unitcheck(args[0])
		}
	}

	fs := flag.NewFlagSet("gausslint", flag.ExitOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: gausslint [-run name,...] [package ...]\n       go vet -vettool=$(command -v gausslint) ./...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	analyzers, err := analysis.ByName(*runNames)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gausslint:", err)
		return 1
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	found, err := analysis.Run(os.Stdout, ".", patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gausslint:", err)
		return 1
	}
	if found {
		return 2
	}
	return 0
}

// printVersion implements -V=full: cmd/go keys its action cache on this
// line, so it must change whenever the binary does — hash the executable.
func printVersion() int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gausslint:", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gausslint:", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, "gausslint:", err)
		return 1
	}
	fmt.Printf("%s version devel buildID=%x\n", exe, h.Sum(nil))
	return 0
}

func unitcheck(cfgPath string) int {
	found, err := analysis.UnitCheck(os.Stderr, cfgPath, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "gausslint:", err)
		return 1
	}
	if found {
		return 2
	}
	return 0
}
