// Command gaussd serves a durable Gauss-tree index over HTTP/JSON: the
// network daemon that turns the library into a service. It opens a
// single-tree page file or a sharded index directory (auto-detected) and
// exposes the /v1 query, mutation and stats API with admission control,
// per-request deadlines and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	gausscli -data faces.csv -index faces.gtree     # build the index once
//	gaussd -index faces.gtree -addr :8442           # serve it
//
//	curl -s localhost:8442/v1/kmliq -d '{"query":{"id":0,"mean":[0.5,0.3],"sigma":[0.05,0.08]},"k":3}'
//
// Flags:
//
//	-addr          listen address (default :8442)
//	-index         page file or sharded directory to serve (required)
//	-max-inflight  concurrently executing requests (default 64)
//	-queue         waiting requests beyond that before 429s (default 128)
//	-timeout       per-request deadline ceiling (default 30s)
//	-readonly      refuse /v1/insert and /v1/delete
//	-commit-latency  group-commit window for the write-ahead log (default 2ms)
//	-cache-mb      buffer cache budget in MB (default 50)
//	-cache-shards  buffer-cache shard count (0 = automatic)
//	-ops-addr      loopback-only operations listener serving GET /metrics
//	               (Prometheus text exposition) and /debug/pprof/
//	               (e.g. 127.0.0.1:6060)
//	-trace-sample  fraction of requests traced end to end, in [0,1]
//	-slow-query-ms log any request at least this slow as a completed trace,
//	               regardless of sampling
//	-slow-query-log file receiving trace/slow-query JSON lines (default stderr)
//	-scrub-interval run the background integrity scrubber this often
//	               (verifies page checksums, node structure and the WAL tail;
//	               0 = disabled)
//	-scrub-rate    scrubber page reads per second (default 256, -1 = unthrottled)
//	-chaos         enable runtime fault injection, armed via POST /debug/fault
//	               on the ops listener (requires -ops-addr; off by default and
//	               completely absent from the hot path until armed)
//	-pprof         deprecated alias for -ops-addr (the profiling listener
//	               grew /metrics and became the operations listener)
//
// A storage fault — injected or real — degrades the daemon instead of
// killing it: reads keep serving the last committed snapshot, mutations
// answer 503 with code "degraded", /readyz flips to 503, and a supervisor
// reopens the index from its files (replaying the write-ahead log) until the
// daemon is healthy again. No restart, no lost acknowledged write.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	gausstree "github.com/gauss-tree/gausstree"
	"github.com/gauss-tree/gausstree/internal/obs"
	"github.com/gauss-tree/gausstree/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8442", "listen address")
		index    = flag.String("index", "", "index to serve: a page file (gausstree.Open) or a sharded directory (gausstree.OpenSharded)")
		inflight = flag.Int("max-inflight", 64, "maximum concurrently executing requests (must be >= 1)")
		queue    = flag.Int("queue", 128, "maximum requests waiting for an execution slot, beyond that: 429 (0 = reject as soon as all slots are busy)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request deadline ceiling")
		readonly = flag.Bool("readonly", false, "refuse mutations (safe for horizontal read replicas)")
		commitLt = flag.Duration("commit-latency", 0, "group-commit window: inserts wait at most this long to share one WAL fsync (0 = default 2ms; longer = fewer fsyncs, higher ack latency)")
		cacheMB  = flag.Int("cache-mb", 50, "buffer cache budget in MB")
		shards   = flag.Int("cache-shards", 0, "buffer-cache shard count, rounded up to a power of two (0 = automatic)")
		opsAddr  = flag.String("ops-addr", "", "expose GET /metrics and /debug/pprof/ on this loopback-only address (e.g. 127.0.0.1:6060 or :6060); empty = disabled")
		pprofAt  = flag.String("pprof", "", "deprecated alias for -ops-addr")
		traceSmp = flag.Float64("trace-sample", 0, "fraction of requests traced end to end, in [0,1] (0 = off); sampled traces go to -slow-query-log")
		slowMS   = flag.Int64("slow-query-ms", 0, "log any request at least this slow as a completed trace, regardless of -trace-sample (0 = off)")
		slowLog  = flag.String("slow-query-log", "", "file receiving trace and slow-query JSON lines, appended (empty = stderr)")
		leafFmt  = flag.String("leaf-format", "", "require the index's persisted leaf format (exact, float32, grid8, legacy-row); the format itself is fixed at build time, so a mismatch refuses to serve (empty = accept any)")
		scrubInt = flag.Duration("scrub-interval", 0, "run the background integrity scrubber this often while healthy (0 = disabled)")
		scrubPPS = flag.Int("scrub-rate", 256, "scrubber page reads per second (-1 = unthrottled)")
		chaos    = flag.Bool("chaos", false, "enable runtime fault injection, armed via POST /debug/fault on the ops listener (requires -ops-addr)")
	)
	flag.Parse()
	if *index == "" {
		fmt.Fprintln(os.Stderr, "gaussd: -index is required")
		flag.Usage()
		os.Exit(2)
	}
	if *inflight < 1 {
		fmt.Fprintln(os.Stderr, "gaussd: -max-inflight must be at least 1")
		os.Exit(2)
	}
	if *queue < 0 {
		fmt.Fprintln(os.Stderr, "gaussd: -queue must not be negative")
		os.Exit(2)
	}
	maxQueue := *queue
	if maxQueue == 0 {
		// The operator said "no waiting"; Config's zero value means
		// "default", so translate to its explicit no-queue encoding.
		maxQueue = -1
	}

	var wantLeaf string
	if *leafFmt != "" {
		f, err := gausstree.ParseLeafFormat(*leafFmt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gaussd:", err)
			os.Exit(2)
		}
		wantLeaf = f.String()
	}

	if *traceSmp < 0 || *traceSmp > 1 {
		fmt.Fprintln(os.Stderr, "gaussd: -trace-sample must be in [0,1]")
		os.Exit(2)
	}
	if *slowMS < 0 {
		fmt.Fprintln(os.Stderr, "gaussd: -slow-query-ms must not be negative")
		os.Exit(2)
	}
	ops := *opsAddr
	if ops == "" && *pprofAt != "" {
		fmt.Fprintln(os.Stderr, "gaussd: -pprof is deprecated, use -ops-addr (same address, now also serving /metrics)")
		ops = *pprofAt
	}
	// Chaos without an ops listener would be unarmable dead weight, and the
	// ops listener is what keeps the fault surface loopback-only.
	var injector *gausstree.FaultInjector
	if *chaos {
		if ops == "" {
			fmt.Fprintln(os.Stderr, "gaussd: -chaos requires -ops-addr (faults are armed via POST /debug/fault on the ops listener)")
			os.Exit(2)
		}
		injector = gausstree.NewFaultInjector()
	}

	// opts is shared with the supervisor's reopen closure below, so a healed
	// index comes back with the same cache, commit and fault-layer shape.
	opts := gausstree.Options{CacheBytes: *cacheMB << 20, CacheShards: *shards, CommitLatency: *commitLt, Fault: injector}
	idx, err := openIndex(*index, opts)
	fail(err)
	if got := idx.LeafFormat(); wantLeaf != "" && got != wantLeaf {
		idx.Close()
		fail(fmt.Errorf("index %s stores leaf format %q, not the required %q (leaf formats are fixed when an index is built)", *index, got, wantLeaf))
	}
	fmt.Printf("gaussd: serving %s index %s: %d vectors, %d-d, %s leaves\n", idx.Kind(), *index, idx.Len(), idx.Dim(), idx.LeafFormat())

	// The metric registry only exists when something can scrape it: with no
	// ops listener the request path skips metric updates entirely.
	var reg *obs.Registry
	if ops != "" {
		reg = obs.NewRegistry()
		l, err := listenOps(ops)
		fail(err)
		fmt.Printf("gaussd: metrics on http://%s/metrics, pprof on http://%s/debug/pprof/\n", l.Addr(), l.Addr())
		if injector != nil {
			fmt.Printf("gaussd: CHAOS enabled — arm faults via POST http://%s/debug/fault\n", l.Addr())
		}
		go func() {
			if err := serveOps(l, reg, injector); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "gaussd: ops listener:", err)
			}
		}()
	}

	var traceLog *os.File
	if *traceSmp > 0 || *slowMS > 0 {
		traceLog = os.Stderr
		if *slowLog != "" {
			traceLog, err = os.OpenFile(*slowLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			fail(err)
			defer traceLog.Close()
		}
	}

	srv := server.New(idx, server.Config{
		MaxInflight:        *inflight,
		MaxQueue:           maxQueue,
		Timeout:            *timeout,
		ReadOnly:           *readonly,
		Metrics:            reg,
		TraceSample:        *traceSmp,
		SlowQueryThreshold: time.Duration(*slowMS) * time.Millisecond,
		TraceLog:           traceLogWriter(traceLog),
		ScrubInterval:      *scrubInt,
		ScrubRate:          *scrubPPS,
		// The self-healing supervisor: reopen the same index path with the
		// same options (WAL replay restores every acknowledged write).
		Reopen: func() (server.Index, error) { return openIndex(*index, opts) },
	})

	// Serve until SIGINT/SIGTERM, then drain in-flight queries (bounded by
	// one -timeout so a stuck query cannot wedge the restart) and sync/close
	// the index — the daemon's answer to the durable engine's crash safety:
	// a clean stop never needs recovery at all.
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fail(err)
	case s := <-sig:
		fmt.Printf("gaussd: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		fail(srv.Shutdown(ctx))
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
		fmt.Println("gaussd: stopped")
	}
}

// traceLogWriter converts the optional log file into the server's trace
// sink; the explicit nil keeps a nil *os.File from arriving as a non-nil
// io.Writer interface.
func traceLogWriter(f *os.File) io.Writer {
	if f == nil {
		return nil
	}
	return f
}

// listenOps binds the operations listener, restricted to loopback: the
// pprof endpoints expose heap contents and symbol tables and /metrics
// leaks workload shape, so both are scraped in place without ever putting
// the surface on the query network. A bare ":port" binds 127.0.0.1; any
// explicit non-loopback host is refused.
func listenOps(addr string) (net.Listener, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("gaussd: invalid -ops-addr %q: %w", addr, err)
	}
	if host == "" {
		host = "127.0.0.1"
	}
	if host != "localhost" {
		ip := net.ParseIP(host)
		if ip == nil || !ip.IsLoopback() {
			return nil, fmt.Errorf("gaussd: -ops-addr %q is not loopback-only (use 127.0.0.1, ::1 or localhost)", addr)
		}
	}
	return net.Listen("tcp", net.JoinHostPort(host, port))
}

// serveOps serves /metrics and the pprof handlers on a dedicated mux
// (never the query mux, and never http.DefaultServeMux) so the operations
// surface stays isolated from the /v1 API. With -chaos it additionally
// serves the fault-injection controls — on the same loopback-only listener,
// so faults can only ever be armed from the daemon's own host.
func serveOps(l net.Listener, reg *obs.Registry, inj *gausstree.FaultInjector) error {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if inj != nil {
		registerFaultHandlers(mux, inj)
	}
	return http.Serve(l, mux)
}

// registerFaultHandlers exposes the chaos controls: POST a
// gausstree.FaultSchedule to arm, GET the live status (armed flag, injected
// counts by operation, time remaining), DELETE to disarm. Arming replaces
// any previous schedule atomically.
func registerFaultHandlers(mux *http.ServeMux, inj *gausstree.FaultInjector) {
	writeStatus := func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(inj.Status())
	}
	mux.HandleFunc("POST /debug/fault", func(w http.ResponseWriter, r *http.Request) {
		var sched gausstree.FaultSchedule
		dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sched); err != nil {
			http.Error(w, "gaussd: decoding fault schedule: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := inj.Arm(sched); err != nil {
			http.Error(w, "gaussd: "+err.Error(), http.StatusBadRequest)
			return
		}
		writeStatus(w)
	})
	mux.HandleFunc("GET /debug/fault", func(w http.ResponseWriter, r *http.Request) {
		writeStatus(w)
	})
	mux.HandleFunc("DELETE /debug/fault", func(w http.ResponseWriter, r *http.Request) {
		inj.Disarm()
		writeStatus(w)
	})
}

// openIndex auto-detects the index layout: a directory holding a shards.json
// manifest is a sharded index, anything else a single page file.
func openIndex(path string, opts gausstree.Options) (server.Index, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		if _, err := os.Stat(filepath.Join(path, "shards.json")); err == nil {
			s, err := gausstree.OpenSharded(path, opts)
			if err != nil {
				return nil, err
			}
			return server.ShardedIndex(s), nil
		}
		return nil, fmt.Errorf("gaussd: %s is a directory without a sharded index manifest", path)
	}
	t, err := gausstree.Open(path, opts)
	if err != nil {
		return nil, err
	}
	return server.TreeIndex(t), nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gaussd:", err)
		os.Exit(1)
	}
}
