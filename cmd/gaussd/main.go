// Command gaussd serves a durable Gauss-tree index over HTTP/JSON: the
// network daemon that turns the library into a service. It opens a
// single-tree page file or a sharded index directory (auto-detected) and
// exposes the /v1 query, mutation and stats API with admission control,
// per-request deadlines and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	gausscli -data faces.csv -index faces.gtree     # build the index once
//	gaussd -index faces.gtree -addr :8442           # serve it
//
//	curl -s localhost:8442/v1/kmliq -d '{"query":{"id":0,"mean":[0.5,0.3],"sigma":[0.05,0.08]},"k":3}'
//
// Flags:
//
//	-addr          listen address (default :8442)
//	-index         page file or sharded directory to serve (required)
//	-max-inflight  concurrently executing requests (default 64)
//	-queue         waiting requests beyond that before 429s (default 128)
//	-timeout       per-request deadline ceiling (default 30s)
//	-readonly      refuse /v1/insert and /v1/delete
//	-cache-mb      buffer cache budget in MB (default 50)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	gausstree "github.com/gauss-tree/gausstree"
	"github.com/gauss-tree/gausstree/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8442", "listen address")
		index    = flag.String("index", "", "index to serve: a page file (gausstree.Open) or a sharded directory (gausstree.OpenSharded)")
		inflight = flag.Int("max-inflight", 64, "maximum concurrently executing requests (must be >= 1)")
		queue    = flag.Int("queue", 128, "maximum requests waiting for an execution slot, beyond that: 429 (0 = reject as soon as all slots are busy)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request deadline ceiling")
		readonly = flag.Bool("readonly", false, "refuse mutations (safe for horizontal read replicas)")
		cacheMB  = flag.Int("cache-mb", 50, "buffer cache budget in MB")
	)
	flag.Parse()
	if *index == "" {
		fmt.Fprintln(os.Stderr, "gaussd: -index is required")
		flag.Usage()
		os.Exit(2)
	}
	if *inflight < 1 {
		fmt.Fprintln(os.Stderr, "gaussd: -max-inflight must be at least 1")
		os.Exit(2)
	}
	if *queue < 0 {
		fmt.Fprintln(os.Stderr, "gaussd: -queue must not be negative")
		os.Exit(2)
	}
	maxQueue := *queue
	if maxQueue == 0 {
		// The operator said "no waiting"; Config's zero value means
		// "default", so translate to its explicit no-queue encoding.
		maxQueue = -1
	}

	idx, err := openIndex(*index, gausstree.Options{CacheBytes: *cacheMB << 20})
	fail(err)
	fmt.Printf("gaussd: serving %s index %s: %d vectors, %d-d\n", idx.Kind(), *index, idx.Len(), idx.Dim())

	srv := server.New(idx, server.Config{
		MaxInflight: *inflight,
		MaxQueue:    maxQueue,
		Timeout:     *timeout,
		ReadOnly:    *readonly,
	})

	// Serve until SIGINT/SIGTERM, then drain in-flight queries (bounded by
	// one -timeout so a stuck query cannot wedge the restart) and sync/close
	// the index — the daemon's answer to the durable engine's crash safety:
	// a clean stop never needs recovery at all.
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fail(err)
	case s := <-sig:
		fmt.Printf("gaussd: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		fail(srv.Shutdown(ctx))
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
		fmt.Println("gaussd: stopped")
	}
}

// openIndex auto-detects the index layout: a directory holding a shards.json
// manifest is a sharded index, anything else a single page file.
func openIndex(path string, opts gausstree.Options) (server.Index, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		if _, err := os.Stat(filepath.Join(path, "shards.json")); err == nil {
			s, err := gausstree.OpenSharded(path, opts)
			if err != nil {
				return nil, err
			}
			return server.ShardedIndex(s), nil
		}
		return nil, fmt.Errorf("gaussd: %s is a directory without a sharded index manifest", path)
	}
	t, err := gausstree.Open(path, opts)
	if err != nil {
		return nil, err
	}
	return server.TreeIndex(t), nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gaussd:", err)
		os.Exit(1)
	}
}
