// Command gaussbench regenerates every table and figure of the paper's
// evaluation (§6) plus this repository's ablations. Each experiment prints
// an aligned text table; EXPERIMENTS.md records the paper-vs-measured
// comparison produced by this tool. All engines are driven through the
// uniform query.Engine interface, so adding a backend to eval.Build
// automatically adds it to every comparison here.
//
// Usage:
//
//	gaussbench -exp all                 # everything (several minutes)
//	gaussbench -exp fig6a,fig7ds2       # selected experiments
//	gaussbench -exp headline -quick     # reduced data sizes for smoke runs
//	gaussbench -exp fig7ds1 -json out.json  # machine-readable results
//
// Experiments: fig1, fig6a, fig6b, fig7ds1, fig7ds2, headline, ablations,
// reopen, shards, serve, hot, ingest, obs, chaos.
// With -json the collected per-backend measurements (page accesses, wall
// times, recall, and heap allocations per query — the -benchmem equivalents)
// are additionally written as JSON ("-" for stdout), so perf trajectories
// can be tracked across revisions in BENCH_*.json files.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	gausstree "github.com/gauss-tree/gausstree"
	"github.com/gauss-tree/gausstree/client"
	"github.com/gauss-tree/gausstree/internal/buildinfo"
	"github.com/gauss-tree/gausstree/internal/core"
	"github.com/gauss-tree/gausstree/internal/dataset"
	"github.com/gauss-tree/gausstree/internal/eval"
	"github.com/gauss-tree/gausstree/internal/gaussian"
	"github.com/gauss-tree/gausstree/internal/obs"
	"github.com/gauss-tree/gausstree/internal/pagefile"
	"github.com/gauss-tree/gausstree/internal/pfv"
	"github.com/gauss-tree/gausstree/internal/server"
	"github.com/gauss-tree/gausstree/internal/shard"
)

func main() {
	var (
		exps     = flag.String("exp", "all", "comma-separated experiments: fig1,fig6a,fig6b,fig7ds1,fig7ds2,headline,ablations,reopen,shards,serve,hot,ingest,obs,chaos,all")
		quick    = flag.Bool("quick", false, "reduced data sizes (for smoke testing)")
		n1       = flag.Int("n1", 10987, "data set 1 size (paper: 10987)")
		n2       = flag.Int("n2", 100000, "data set 2 size (paper: 100000)")
		q1       = flag.Int("q1", 100, "data set 1 query count (paper: 100)")
		q2       = flag.Int("q2", 500, "data set 2 query count (paper: 500)")
		pageSz   = flag.Int("pagesize", pagefile.DefaultPageSize, "page size in bytes")
		seek     = flag.Duration("seek", 0, "override cost-model seek time (0 = default)")
		seed1    = flag.Int64("seed1", 1, "data set 1 seed")
		seed2    = flag.Int64("seed2", 2, "data set 2 seed")
		jsonPath = flag.String("json", "", "write collected results as JSON to this file (\"-\" for stdout)")
		leafFmt  = flag.String("leaf-format", "", "Gauss-tree leaf encoding: exact, float32, grid8 (default exact)")
	)
	flag.Parse()
	leafFormat, err := core.ParseLeafFormat(*leafFmt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gaussbench:", err)
		os.Exit(2)
	}
	if *quick {
		*n1, *n2, *q1, *q2 = 3000, 10000, 40, 60
	}
	_ = seek // the default model is used; kept for operator experiments

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	run := func(name string) bool { return all || want[name] }

	b := &bench{
		n1: *n1, n2: *n2, q1: *q1, q2: *q2,
		pageSize: *pageSz, seed1: *seed1, seed2: *seed2,
		leafFormat: leafFormat,
	}
	b.out.Params = benchParams{
		N1: *n1, N2: *n2, Q1: *q1, Q2: *q2, PageSize: *pageSz, Quick: *quick,
		LeafFormat: leafFormat.String(),
	}
	b.out.Build = buildinfo.Get()

	if run("fig1") {
		b.figure1()
	}
	if run("fig6a") || run("fig7ds1") || run("headline") || run("ablations") {
		b.loadDS1()
	}
	if run("fig6b") || run("fig7ds2") || run("headline") || run("ablations") {
		b.loadDS2()
	}
	if run("fig6a") {
		b.figure6(b.e1, b.ds1, b.qs1, "fig6a")
	}
	if run("fig6b") {
		b.figure6(b.e2, b.ds2, b.qs2, "fig6b")
	}
	if run("fig7ds1") {
		b.figure7(b.e1, b.ds1, b.qs1, "fig7ds1")
	}
	if run("fig7ds2") {
		b.figure7(b.e2, b.ds2, b.qs2, "fig7ds2")
	}
	if run("headline") {
		b.headline()
	}
	if run("ablations") {
		b.ablations()
	}
	if run("reopen") {
		b.reopen()
	}
	if run("shards") {
		b.shards()
	}
	if run("serve") {
		b.serve()
	}
	if run("hot") {
		b.hot()
	}
	if run("ingest") {
		b.ingest()
	}
	if run("obs") {
		b.obsExp()
	}
	if run("chaos") {
		b.chaosExp()
	}
	if *jsonPath != "" {
		b.writeJSON(*jsonPath)
	}
}

// benchParams records the data sizes a JSON result was measured with.
type benchParams struct {
	N1, N2     int
	Q1, Q2     int
	PageSize   int
	Quick      bool
	LeafFormat string
}

// ablationRow is one engine × configuration measurement of an ablation.
type ablationRow struct {
	Ablation  string
	Engine    string
	Variant   string   `json:",omitempty"`
	PagesPerQ float64  // mean logical page accesses per query
	Recall    *float64 `json:",omitempty"` // recall@1; nil when not measured
}

// reopenReport measures the durable engine's build-once/query-forever path
// on data set 1: cold Open latency, the page-access cost of the first
// (cold-cache) k-MLIQ query, and the steady mean over the full query set.
type reopenReport struct {
	Vectors         int
	IndexBytes      int64
	BuildMillis     float64
	OpenMillis      float64
	FirstQueryPages uint64
	PagesPerQuery   float64
}

// shardScalingRow is one shard-count × query-type cell of the sharded
// fan-out scaling experiment: wall-clock over the whole query set, mean
// aggregated page accesses across all shards, the mean number of
// cross-shard denominator merge rounds, and mean heap allocations per query.
type shardScalingRow struct {
	Shards      int
	Query       string
	WallMillis  float64
	PagesPerQ   float64
	MergeRounds float64
	AllocsPerQ  float64
	BytesPerQ   float64
}

// serveRow is one concurrency level of the network-serving experiment:
// throughput and latency percentiles of k-MLIQ requests issued by N
// concurrent clients against a loopback gaussd, plus whole-process heap
// allocations per request (client + server side — both live in this
// process, so the figure is the end-to-end allocation cost of one request).
type serveRow struct {
	Clients    int
	Requests   int
	RPS        float64
	P50Millis  float64
	P99Millis  float64
	AllocsPerQ float64
	BytesPerQ  float64
}

// hotRow is one query kind of the hot read-path experiment: the index is
// fully cached, so the numbers are the pure in-memory cost per query — the
// -benchmem equivalent of BenchmarkKMLIQHot inside gaussbench.
type hotRow struct {
	Query      string
	LeafFormat string
	NsPerQ     float64
	PagesPerQ  float64
	AllocsPerQ float64
	BytesPerQ  float64
}

// ingestReport measures the non-blocking write path on a durable index: a
// sustained multi-writer insert burst with concurrent readers. The headline
// contrasts are (a) acknowledged-durable inserts/s under group commit versus
// the serialized per-insert-checkpoint path (the only way the engine could
// make a single insert durable before the WAL existed), and (b) reader
// latency during the burst versus idle — snapshot-isolated reads should keep
// p99 in the same regime while writers hammer the tree. The merge-ingest
// figures drive the same durable tree in FROSS-style Options.Ingest mode:
// repeated observations of a fixed object population fold into the stored
// fingerprints instead of growing the index.
type ingestReport struct {
	PreLoaded                int
	BurstInserts             int
	Writers, Readers         int
	SerializedInsertsPerSec  float64
	GroupCommitInsertsPerSec float64
	InsertSpeedup            float64
	IdleP50Millis            float64
	IdleP99Millis            float64
	BurstP50Millis           float64
	BurstP99Millis           float64
	ReaderSamples            int
	WALFsyncs                uint64
	WALRecords               uint64
	MeanGroupSize            float64
	SnapshotEpoch            uint64
	MergeObsPerSec           float64
	MergeObservations        int
	MergedShare              float64
}

// measureAllocs runs f and returns the heap allocation count and byte delta
// it caused (whole process; run quiesced experiments only).
func measureAllocs(f func()) (allocs, bytes uint64) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	f()
	runtime.ReadMemStats(&m1)
	return m1.Mallocs - m0.Mallocs, m1.TotalAlloc - m0.TotalAlloc
}

// obsRow is one variant of the observability-overhead experiment: the hot
// k-MLIQ path with metrics/tracing progressively enabled. OverheadPct is
// ns/query relative to the baseline variant; the unsampled budget is <=2%.
type obsRow struct {
	Variant     string
	NsPerQ      float64
	PagesPerQ   float64
	AllocsPerQ  float64
	BytesPerQ   float64
	OverheadPct float64
}

// chaosReport summarizes the fault-storm experiment: a loopback gaussd with
// the supervisor and scrubber armed serves concurrent traffic while bounded
// fault schedules repeatedly break its storage. The headline figures are the
// heal latency (disarm -> /readyz healthy), the acknowledged-write loss count
// (must be zero), and what the disarmed fault layer costs the hot read path.
type chaosReport struct {
	Rounds              int     // fault schedules armed, one at a time
	FaultsInjected      uint64  // I/O faults the injector actually fired
	Degradations        uint64  // healthy -> degraded transitions observed
	MeanHealMillis      float64 // disarm -> readyz-healthy, mean over rounds
	MaxHealMillis       float64
	QueriesOK           int
	QueriesRejected     int // typed rejections during the storm
	InsertsAcked        int
	InsertsRejected     int
	AckedLost           int // acknowledged inserts missing after cold reopen; must be 0
	ScrubRuns           uint64
	ScrubPages          uint64
	DisarmedOverheadPct float64 // hot k-MLIQ ns/q: disarmed injector vs no injector
}

// benchOutput is the machine-readable result set emitted by -json. Build
// records what produced the numbers, so BENCH snapshots are attributable.
type benchOutput struct {
	Params       benchParams
	Build        buildinfo.Info
	Fig6         []*eval.Fig6Report `json:",omitempty"`
	Fig7         []*eval.Fig7Report `json:",omitempty"`
	Ablations    []ablationRow      `json:",omitempty"`
	Reopen       *reopenReport      `json:",omitempty"`
	ShardScaling []shardScalingRow  `json:",omitempty"`
	Serve        []serveRow         `json:",omitempty"`
	Hot          []hotRow           `json:",omitempty"`
	Ingest       *ingestReport      `json:",omitempty"`
	Obs          []obsRow           `json:",omitempty"`
	Chaos        *chaosReport       `json:",omitempty"`
}

type bench struct {
	n1, n2, q1, q2   int
	pageSize         int
	leafFormat       core.LeafFormat
	seed1, seed2     int64
	ds1, ds2         *dataset.Dataset
	qs1, qs2         []dataset.Query
	e1, e2           *eval.Engines
	fig6a, fig6b     *eval.Fig6Report
	fig7ds1, fig7ds2 *eval.Fig7Report
	out              benchOutput
}

func (b *bench) loadDS1() {
	if b.ds1 != nil {
		return
	}
	p := dataset.DefaultHistogramParams()
	p.N = b.n1
	p.Seed = b.seed1
	ds, err := dataset.ColorHistograms(p)
	check(err)
	qs, err := dataset.MakeQueries(ds, dataset.QueryParams{Count: b.q1, Sigma: p.Sigma, Seed: b.seed1 + 100})
	check(err)
	fmt.Printf("# data set 1: %d histogram pfv, %d-d, %d queries\n", len(ds.Vectors), ds.Dim, len(qs))
	start := time.Now()
	e, err := eval.Build(ds, eval.Setup{PageSize: b.pageSize, LeafFormat: b.leafFormat})
	check(err)
	fmt.Printf("# built gauss-tree(h=%d), x-tree(h=%d), scan file, va-file in %v\n\n",
		e.Tree.Height(), e.X.Height(), time.Since(start).Round(time.Millisecond))
	b.ds1, b.qs1, b.e1 = ds, qs, e
}

func (b *bench) loadDS2() {
	if b.ds2 != nil {
		return
	}
	p := dataset.DefaultSyntheticParams()
	p.N = b.n2
	p.Seed = b.seed2
	ds, err := dataset.Synthetic(p)
	check(err)
	qs, err := dataset.MakeQueries(ds, dataset.QueryParams{Count: b.q2, Sigma: p.Sigma, Seed: b.seed2 + 100})
	check(err)
	fmt.Printf("# data set 2: %d synthetic pfv, %d-d, %d queries\n", len(ds.Vectors), ds.Dim, len(qs))
	start := time.Now()
	e, err := eval.Build(ds, eval.Setup{PageSize: b.pageSize, LeafFormat: b.leafFormat})
	check(err)
	fmt.Printf("# built gauss-tree(h=%d), x-tree(h=%d), scan file, va-file in %v\n\n",
		e.Tree.Height(), e.X.Height(), time.Since(start).Round(time.Millisecond))
	b.ds2, b.qs2, b.e2 = ds, qs, e
}

// figure1 reproduces the worked example of paper Figure 1 / §3.1.
func (b *bench) figure1() {
	fmt.Println("=== Figure 1 / §3.1 worked example ===")
	q := pfv.MustNew(0, []float64{0, 0}, []float64{0.0617, 0.9401})
	db := []pfv.Vector{
		pfv.MustNew(1, []float64{1.1503, 1.0088}, []float64{0.3579, 0.2864}),
		pfv.MustNew(2, []float64{1.8674, 0.6274}, []float64{0.8130, 1.8051}),
		pfv.MustNew(3, []float64{1.3597, 1.0857}, []float64{1.3154, 0.1790}),
	}
	ps := pfv.Posterior(gaussian.CombineAdditive, db, q)
	fmt.Println("object  euclidean-dist  P(v|q)   paper")
	paper := []string{"10%", "13%", "77%"}
	for i, v := range db {
		fmt.Printf("O%d      %14.2f  %5.1f%%   %s\n", i+1, pfv.EuclideanDistance(q, v), 100*ps[i], paper[i])
	}
	fmt.Println("Euclidean NN picks O1; the Gaussian uncertainty model identifies O3.")
	fmt.Println()
}

func (b *bench) figure6(e *eval.Engines, ds *dataset.Dataset, qs []dataset.Query, name string) {
	fmt.Printf("=== %s ===\n", name)
	rep, err := eval.Figure6(e, ds, qs, []int{1, 2, 3, 4, 5, 6, 7, 8, 9})
	check(err)
	fmt.Print(rep.Format())
	fmt.Println()
	if name == "fig6a" {
		b.fig6a = rep
	} else {
		b.fig6b = rep
	}
	b.out.Fig6 = append(b.out.Fig6, rep)
}

func (b *bench) figure7(e *eval.Engines, ds *dataset.Dataset, qs []dataset.Query, name string) {
	fmt.Printf("=== %s ===\n", name)
	rep, err := eval.Figure7(e, ds, qs)
	check(err)
	fmt.Print(rep.Format())
	fmt.Println()
	if name == "fig7ds1" {
		b.fig7ds1 = rep
	} else {
		b.fig7ds2 = rep
	}
	b.out.Fig7 = append(b.out.Fig7, rep)
}

// headline prints the §6 headline numbers next to the paper's.
func (b *bench) headline() {
	fmt.Println("=== Headline numbers (paper §6 vs measured) ===")
	if b.fig6a == nil {
		b.figure6(b.e1, b.ds1, b.qs1, "fig6a")
	}
	if b.fig6b == nil {
		b.figure6(b.e2, b.ds2, b.qs2, "fig6b")
	}
	if b.fig7ds1 == nil {
		b.figure7(b.e1, b.ds1, b.qs1, "fig7ds1")
	}
	if b.fig7ds2 == nil {
		b.figure7(b.e2, b.ds2, b.qs2, "fig7ds2")
	}
	row := func(metric, paper string, measured float64, unit string) {
		fmt.Printf("%-44s %10s %9.1f%s\n", metric, paper, measured, unit)
	}
	fmt.Printf("%-44s %10s %10s\n", "metric", "paper", "measured")
	row("DS1 3-MLIQ recall (x1)", "98%", 100*b.fig6a.Rows[0].RecallMLIQ, "%")
	row("DS1 3-NN recall (x1)", "42%", 100*b.fig6a.Rows[0].RecallNN, "%")
	row("DS2 3-MLIQ recall (x1)", "99%", 100*b.fig6b.Rows[0].RecallMLIQ, "%")
	row("DS2 3-NN recall (x1)", "61%", 100*b.fig6b.Rows[0].RecallNN, "%")
	row("DS1 G-tree page speedup, 1-MLIQ", "4.2x", b.fig7ds1.SpeedupOver("Gauss-Tree", "1-MLIQ"), "x")
	row("DS1 G-tree page speedup, TIQ(0.8)", "4.2x", b.fig7ds1.SpeedupOver("Gauss-Tree", "TIQ(P=0.8)"), "x")
	row("DS2 G-tree page speedup, 1-MLIQ", "4.3x", b.fig7ds2.SpeedupOver("Gauss-Tree", "1-MLIQ"), "x")
	row("DS2 G-tree page speedup, TIQ(0.8)", "35.7-43.2x", b.fig7ds2.SpeedupOver("Gauss-Tree", "TIQ(P=0.8)"), "x")
	row("DS2 G-tree page speedup, TIQ(0.2)", "35.7-43.2x", b.fig7ds2.SpeedupOver("Gauss-Tree", "TIQ(P=0.2)"), "x")
	row("DS2 X-tree page speedup, 1-MLIQ", "~1x", b.fig7ds2.SpeedupOver("X-Tree", "1-MLIQ"), "x")
	fmt.Println()
}

// ablations runs the design-choice comparisons of DESIGN.md (A1-A4).
func (b *bench) ablations() {
	fmt.Println("=== Ablation A1: σ-combination rule (DS2 subset) ===")
	b.ablateCombiner()
	fmt.Println("=== Ablation A2: split/insert objectives (DS2 subset) ===")
	b.ablateSplit()
	fmt.Println("=== Ablation A4: engine comparison, 1-MLIQ recall@1 (DS2 subset) ===")
	b.ablateEngines()
}

func (b *bench) subset(n, nq int) (*dataset.Dataset, []dataset.Query) {
	p := dataset.DefaultSyntheticParams()
	p.N = n
	p.Seed = b.seed2
	ds, err := dataset.Synthetic(p)
	check(err)
	qs, err := dataset.MakeQueries(ds, dataset.QueryParams{Count: nq, Sigma: p.Sigma, Seed: b.seed2 + 7})
	check(err)
	return ds, qs
}

func (b *bench) ablateCombiner() {
	ds, qs := b.subset(min(b.n2, 20000), 100)
	ctx := context.Background()
	fmt.Printf("%-14s %12s %14s\n", "combiner", "MLIQ recall", "pages/query")
	for _, comb := range []gaussian.Combiner{gaussian.CombineAdditive, gaussian.CombineConvolution} {
		e, err := eval.Build(ds, eval.Setup{PageSize: b.pageSize, Combiner: comb, LeafFormat: b.leafFormat})
		check(err)
		hits := 0
		var pagesTotal uint64
		for _, q := range qs {
			res, st, err := e.Tree.KMLIQRanked(ctx, q.Vector, 1)
			check(err)
			pagesTotal += st.PageAccesses
			if len(res) > 0 && res[0].Vector.ID == q.TruthID {
				hits++
			}
		}
		recall := float64(hits) / float64(len(qs))
		pages := float64(pagesTotal) / float64(len(qs))
		fmt.Printf("%-14s %11.0f%% %14.1f\n", comb, 100*recall, pages)
		b.out.Ablations = append(b.out.Ablations, ablationRow{
			Ablation: "A1-combiner", Engine: "Gauss-Tree", Variant: comb.String(),
			PagesPerQ: pages, Recall: &recall,
		})
	}
	fmt.Println()
}

func (b *bench) ablateSplit() {
	ds, qs := b.subset(min(b.n2, 20000), 100)
	ctx := context.Background()
	fmt.Printf("%-20s %14s\n", "split objective", "pages/query")
	for _, split := range []core.SplitObjective{core.SplitHullIntegral, core.SplitHullIntegralSum, core.SplitVolume} {
		mgr, err := pagefile.NewManager(pagefile.NewMemBackend(b.pageSize), b.pageSize)
		check(err)
		tr, err := core.New(mgr, ds.Dim, core.Config{Split: split})
		check(err)
		check(tr.BulkLoad(ds.Vectors))
		var pagesTotal uint64
		for _, q := range qs {
			_, st, err := tr.KMLIQRanked(ctx, q.Vector, 1)
			check(err)
			pagesTotal += st.PageAccesses
		}
		pages := float64(pagesTotal) / float64(len(qs))
		fmt.Printf("%-20s %14.1f\n", split, pages)
		b.out.Ablations = append(b.out.Ablations, ablationRow{
			Ablation: "A2-split", Engine: "Gauss-Tree", Variant: split.String(),
			PagesPerQ: pages,
		})
	}
	fmt.Println()
}

// ablateEngines compares every backend through the query.Engine interface:
// one ranked 1-MLIQ per query, recall@1 against the generating object.
func (b *bench) ablateEngines() {
	ds, qs := b.subset(min(b.n2, 20000), 100)
	e, err := eval.Build(ds, eval.Setup{PageSize: b.pageSize, LeafFormat: b.leafFormat})
	check(err)
	ctx := context.Background()
	fmt.Printf("%-12s %14s %12s\n", "engine", "pages/query", "recall@1")
	for _, eng := range e.All() {
		eng.Mgr.ResetStats()
		eng.Mgr.DropCache()
		hits := 0
		var pagesTotal uint64
		for _, q := range qs {
			res, st, err := eng.Engine.KMLIQRanked(ctx, q.Vector, 1)
			check(err)
			pagesTotal += st.PageAccesses
			if len(res) > 0 && res[0].Vector.ID == q.TruthID {
				hits++
			}
		}
		recall := float64(hits) / float64(len(qs))
		pages := float64(pagesTotal) / float64(len(qs))
		fmt.Printf("%-12s %14.1f %11.0f%%\n", eng.Label, pages, 100*recall)
		b.out.Ablations = append(b.out.Ablations, ablationRow{
			Ablation: "A4-engines", Engine: eng.Label,
			PagesPerQ: pages, Recall: &recall,
		})
	}
	fmt.Println()
}

// reopen measures the durable storage engine: build the DS1 index into a
// page file once, close it, then cold-open it and query — the restart path
// a production deployment takes.
func (b *bench) reopen() {
	b.loadDS1()
	fmt.Println("=== Reopen: durable index, cold Open + k-MLIQ (DS1) ===")
	dir, err := os.MkdirTemp("", "gaussbench-reopen")
	check(err)
	defer os.RemoveAll(dir)
	path := dir + "/ds1.gtree"

	start := time.Now()
	tr, err := gausstree.New(b.ds1.Dim, gausstree.Options{Path: path, PageSize: b.pageSize})
	check(err)
	check(tr.BulkLoad(b.ds1.Vectors))
	check(tr.Close())
	buildTime := time.Since(start)
	info, err := os.Stat(path)
	check(err)

	start = time.Now()
	re, err := gausstree.Open(path)
	check(err)
	defer re.Close()
	openTime := time.Since(start)

	ctx := context.Background()
	var first, total uint64
	for i, q := range b.qs1 {
		_, st, err := re.KMLIQContext(ctx, q.Vector, 1)
		check(err)
		if i == 0 {
			first = st.PageAccesses
		}
		total += st.PageAccesses
	}
	rep := &reopenReport{
		Vectors:         len(b.ds1.Vectors),
		IndexBytes:      info.Size(),
		BuildMillis:     float64(buildTime.Microseconds()) / 1e3,
		OpenMillis:      float64(openTime.Microseconds()) / 1e3,
		FirstQueryPages: first,
		PagesPerQuery:   float64(total) / float64(len(b.qs1)),
	}
	fmt.Printf("%-28s %12d\n", "vectors", rep.Vectors)
	fmt.Printf("%-28s %12d\n", "index bytes", rep.IndexBytes)
	fmt.Printf("%-28s %12.1f\n", "build+close ms", rep.BuildMillis)
	fmt.Printf("%-28s %12.3f\n", "cold Open ms", rep.OpenMillis)
	fmt.Printf("%-28s %12d\n", "first query pages", rep.FirstQueryPages)
	fmt.Printf("%-28s %12.1f\n", "pages/query (all)", rep.PagesPerQuery)
	fmt.Println()
	b.out.Reopen = rep
}

// shards measures the sharded engine's scale-out behavior: the same DS2
// subset and query set against 1/2/4/8-shard in-memory engines, reporting
// wall-clock over the full query set, mean aggregated page accesses (the
// sum over all shards — the fan-out does more total work than one tree, the
// wall-clock shows what the parallelism buys back), and the mean number of
// cross-shard denominator merge rounds per query.
func (b *bench) shards() {
	ds, qs := b.subset(min(b.n2, 20000), 200)
	ctx := context.Background()
	fmt.Println("=== Shards: sharded Gauss-tree fan-out scaling (DS2 subset) ===")
	fmt.Printf("%-8s %-10s %12s %14s %8s %10s\n", "shards", "query", "wall ms", "pages/query", "rounds", "allocs/q")
	for _, n := range []int{1, 2, 4, 8} {
		trees := make([]*core.Tree, n)
		for i := range trees {
			mgr, err := pagefile.NewManager(pagefile.NewMemBackend(b.pageSize), b.pageSize)
			check(err)
			trees[i], err = core.New(mgr, ds.Dim, core.Config{})
			check(err)
		}
		eng, err := shard.New(trees, shard.HashByID())
		check(err)
		check(eng.BulkLoad(ds.Vectors))
		type qt struct {
			name string
			run  func(q pfv.Vector) (shard.Stats, error)
		}
		for _, kind := range []qt{
			{"3-MLIQ", func(q pfv.Vector) (shard.Stats, error) {
				_, st, err := eng.KMLIQDetail(ctx, q, 3, 1e-4)
				return st, err
			}},
			{"TIQ(0.8)", func(q pfv.Vector) (shard.Stats, error) {
				_, st, err := eng.TIQDetail(ctx, q, 0.8, 1e-4)
				return st, err
			}},
		} {
			var pages uint64
			var wall time.Duration
			rounds := 0
			// The timed window lives inside the closure so the
			// stop-the-world ReadMemStats bracketing never pollutes the
			// wall-clock metric tracked across revisions.
			allocs, bytes := measureAllocs(func() {
				start := time.Now()
				for _, q := range qs {
					st, err := kind.run(q.Vector)
					check(err)
					pages += st.PageAccesses
					rounds += st.MergeRounds
				}
				wall = time.Since(start)
			})
			row := shardScalingRow{
				Shards:      n,
				Query:       kind.name,
				WallMillis:  float64(wall.Microseconds()) / 1e3,
				PagesPerQ:   float64(pages) / float64(len(qs)),
				MergeRounds: float64(rounds) / float64(len(qs)),
				AllocsPerQ:  float64(allocs) / float64(len(qs)),
				BytesPerQ:   float64(bytes) / float64(len(qs)),
			}
			fmt.Printf("%-8d %-10s %12.1f %14.1f %8.2f %10.0f\n", row.Shards, row.Query, row.WallMillis, row.PagesPerQ, row.MergeRounds, row.AllocsPerQ)
			b.out.ShardScaling = append(b.out.ShardScaling, row)
		}
	}
	fmt.Println()
}

// serve measures the network serving layer: a loopback gaussd (the real
// internal/server daemon over a real TCP listener) answering 3-MLIQ
// requests from 1, 8 and 64 concurrent pooled clients, reporting
// requests/sec and p50/p99 latency per concurrency level. The gap between
// this and the in-process numbers is the HTTP/JSON + admission-control tax;
// the scaling across levels is what the bounded-concurrency executor buys.
func (b *bench) serve() {
	ds, qs := b.subset(min(b.n2, 20000), 200)
	fmt.Println("=== Serve: loopback gaussd throughput/latency (DS2 subset) ===")

	tr, err := gausstree.New(ds.Dim, gausstree.Options{PageSize: b.pageSize})
	check(err)
	check(tr.BulkLoad(ds.Vectors))
	srv := server.New(server.TreeIndex(tr), server.Config{MaxInflight: 128, MaxQueue: 256})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go srv.Serve(l)

	cl, err := client.New(l.Addr().String())
	check(err)
	defer cl.Close()
	ctx := context.Background()
	// Warm the connection pool and the page cache.
	for i := 0; i < 16; i++ {
		_, _, err := cl.KMLIQ(ctx, qs[i%len(qs)].Vector, 3)
		check(err)
	}

	fmt.Printf("%-8s %10s %12s %12s %12s %10s\n", "clients", "requests", "req/s", "p50 ms", "p99 ms", "allocs/q")
	for _, clients := range []int{1, 8, 64} {
		total := 96 * clients
		if total > 1536 {
			total = 1536
		}
		lat := make([]time.Duration, total)
		var next atomic.Int64
		var wall time.Duration
		allocs, bytes := measureAllocs(func() {
			start := time.Now()
			var wg sync.WaitGroup
			for w := 0; w < clients; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= total {
							return
						}
						t0 := time.Now()
						_, _, err := cl.KMLIQ(ctx, qs[i%len(qs)].Vector, 3)
						check(err)
						lat[i] = time.Since(t0)
					}
				}()
			}
			wg.Wait()
			wall = time.Since(start)
		})
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		row := serveRow{
			Clients:    clients,
			Requests:   total,
			RPS:        float64(total) / wall.Seconds(),
			P50Millis:  float64(lat[total/2].Microseconds()) / 1e3,
			P99Millis:  float64(lat[total*99/100].Microseconds()) / 1e3,
			AllocsPerQ: float64(allocs) / float64(total),
			BytesPerQ:  float64(bytes) / float64(total),
		}
		fmt.Printf("%-8d %10d %12.0f %12.3f %12.3f %10.0f\n", row.Clients, row.Requests, row.RPS, row.P50Millis, row.P99Millis, row.AllocsPerQ)
		b.out.Serve = append(b.out.Serve, row)
	}
	fmt.Println()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	check(srv.Shutdown(sctx))
}

// hot measures the pure in-memory read path: the DS2-subset index is fully
// cached (buffer cache and decoded-node cache warmed by a full pass over the
// query set), so ns/query, allocs/query and bytes/query are the CPU cost of
// the hot path itself — gaussbench's counterpart of BenchmarkKMLIQHot, the
// number the sharded buffer cache, decoded-node cache and pooled traversal
// state optimize.
func (b *bench) hot() {
	ds, qs := b.subset(min(b.n2, 20000), 200)
	e, err := eval.Build(ds, eval.Setup{PageSize: b.pageSize, LeafFormat: b.leafFormat})
	check(err)
	ctx := context.Background()
	fmt.Println("=== Hot: fully cached read path (DS2 subset) ===")
	fmt.Printf("%-14s %12s %14s %10s %10s\n", "query", "ns/query", "pages/query", "allocs/q", "bytes/q")

	type qt struct {
		name string
		run  func(q pfv.Vector) (uint64, error)
	}
	kinds := []qt{
		{"3-MLIQ-ranked", func(q pfv.Vector) (uint64, error) {
			_, st, err := e.Tree.KMLIQRanked(ctx, q, 3)
			return st.PageAccesses, err
		}},
		{"3-MLIQ", func(q pfv.Vector) (uint64, error) {
			_, st, err := e.Tree.KMLIQ(ctx, q, 3, 1e-4)
			return st.PageAccesses, err
		}},
		{"TIQ(0.8)", func(q pfv.Vector) (uint64, error) {
			_, st, err := e.Tree.TIQ(ctx, q, 0.8, 1e-4)
			return st.PageAccesses, err
		}},
	}
	const passes = 3
	for _, kind := range kinds {
		// Warm both cache layers with one full pass.
		for _, q := range qs {
			if _, err := kind.run(q.Vector); err != nil {
				check(err)
			}
		}
		runtime.GC()
		var pages uint64
		var wall time.Duration
		allocs, bytes := measureAllocs(func() {
			start := time.Now()
			for p := 0; p < passes; p++ {
				for _, q := range qs {
					pg, err := kind.run(q.Vector)
					check(err)
					pages += pg
				}
			}
			wall = time.Since(start)
		})
		n := float64(passes * len(qs))
		row := hotRow{
			Query:      kind.name,
			LeafFormat: e.Tree.LeafFormat().String(),
			NsPerQ:     float64(wall.Nanoseconds()) / n,
			PagesPerQ:  float64(pages) / n,
			AllocsPerQ: float64(allocs) / n,
			BytesPerQ:  float64(bytes) / n,
		}
		fmt.Printf("%-14s %12.0f %14.1f %10.1f %10.0f\n", row.Query, row.NsPerQ, row.PagesPerQ, row.AllocsPerQ, row.BytesPerQ)
		b.out.Hot = append(b.out.Hot, row)
	}
	fmt.Println()
}

// obsExp measures what the observability layer costs the hot k-MLIQ path,
// in four variants over the same fully cached index:
//
//   - baseline: no registry, no trace in the context — the production
//     fast path, whose only instrumentation residue is one nil check per
//     traversal (this is what the <=2% budget is judged against);
//   - metrics: a registry exporting the pagefile counters through Func
//     collectors while a scraper renders it every few milliseconds — the
//     collectors run at scrape time, so per-query cost should not move;
//   - trace_1pct: 1% of queries carry a pooled trace (gaussd's suggested
//     -trace-sample for production);
//   - trace_all: every query traced, the worst case.
func (b *bench) obsExp() {
	ds, qs := b.subset(min(b.n2, 20000), 200)
	e, err := eval.Build(ds, eval.Setup{PageSize: b.pageSize, LeafFormat: b.leafFormat})
	check(err)
	ctx := context.Background()
	fmt.Println("=== Obs: metrics and tracing overhead on the hot k-MLIQ path ===")
	fmt.Printf("%-12s %12s %14s %10s %10s %10s\n", "variant", "ns/query", "pages/query", "allocs/q", "bytes/q", "overhead")

	kmliq := func(c context.Context, q pfv.Vector) (uint64, error) {
		_, st, err := e.Tree.KMLIQ(c, q, 3, 1e-4)
		return st.PageAccesses, err
	}
	const passes = 3
	measure := func(perQ func(q pfv.Vector) (uint64, error)) obsRow {
		for _, q := range qs { // warm both cache layers
			_, err := perQ(q.Vector)
			check(err)
		}
		runtime.GC()
		var pages uint64
		var wall time.Duration
		allocs, bytes := measureAllocs(func() {
			start := time.Now()
			for p := 0; p < passes; p++ {
				for _, q := range qs {
					pg, err := perQ(q.Vector)
					check(err)
					pages += pg
				}
			}
			wall = time.Since(start)
		})
		n := float64(passes * len(qs))
		return obsRow{
			NsPerQ:     float64(wall.Nanoseconds()) / n,
			PagesPerQ:  float64(pages) / n,
			AllocsPerQ: float64(allocs) / n,
			BytesPerQ:  float64(bytes) / n,
		}
	}

	// metrics variant: the index counters exported exactly like gaussd's
	// /metrics, with a concurrent scraper applying realistic scrape load.
	mgr := e.Tree.Manager()
	reg := obs.NewRegistry()
	reg.CounterFunc("gausstree_pagefile_logical_reads_total", "Page reads requested of the page manager.",
		func() float64 { return float64(mgr.Stats().LogicalReads) })
	reg.CounterFunc("gausstree_pagefile_cache_hits_total", "Page reads served from the page cache.",
		func() float64 { return float64(mgr.Stats().CacheHits) })
	reg.CounterFunc("gausstree_pagefile_physical_reads_total", "Page reads that went to the backing file.",
		func() float64 { return float64(mgr.Stats().PhysicalReads) })
	reg.GaugeFunc("gausstree_snapshot_epoch", "Published snapshot epoch.",
		func() float64 { return float64(mgr.Epoch()) })
	traced := func(smp *obs.Sampler) func(q pfv.Vector) (uint64, error) {
		return func(q pfv.Vector) (uint64, error) {
			c := ctx
			var tr *obs.Trace
			if smp.Sample() {
				tr = obs.NewTrace("")
				c = obs.WithTrace(ctx, tr)
			}
			pg, err := kmliq(c, q)
			tr.Release()
			return pg, err
		}
	}

	variants := []struct {
		name    string
		scraped bool
		perQ    func(q pfv.Vector) (uint64, error)
	}{
		{"baseline", false, func(q pfv.Vector) (uint64, error) { return kmliq(ctx, q) }},
		{"metrics", true, func(q pfv.Vector) (uint64, error) { return kmliq(ctx, q) }},
		{"trace_1pct", true, traced(obs.NewSampler(0.01))},
		{"trace_all", true, traced(obs.NewSampler(1))},
	}
	var baseNs float64
	for _, v := range variants {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		if v.scraped {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					case <-time.After(5 * time.Millisecond):
						check(reg.WritePrometheus(io.Discard))
					}
				}
			}()
		}
		row := measure(v.perQ)
		close(stop)
		wg.Wait()
		row.Variant = v.name
		if v.name == "baseline" {
			baseNs = row.NsPerQ
		} else {
			row.OverheadPct = (row.NsPerQ - baseNs) / baseNs * 100
		}
		fmt.Printf("%-12s %12.0f %14.1f %10.1f %10.0f %9.1f%%\n",
			row.Variant, row.NsPerQ, row.PagesPerQ, row.AllocsPerQ, row.BytesPerQ, row.OverheadPct)
		b.out.Obs = append(b.out.Obs, row)
	}
	fmt.Println("budget: metrics-on, tracing unsampled must stay within +2% ns/query of baseline")
	fmt.Println()
}

// chaosExp drives the self-healing serving stack through a deterministic
// fault storm and reports what fault tolerance costs and delivers. Phase one
// quantifies the standing tax: the hot k-MLIQ path on the same file-backed
// index with and without a (disarmed) fault injector wrapping its backend —
// the production configuration of a chaos-capable gaussd. Phase two arms
// bounded fault schedules one at a time against a loopback daemon running
// the recovery supervisor and the background scrubber while query and insert
// workers hammer it, measuring heal latency (disarm -> /readyz healthy) per
// round. The run ends with a cold reopen proving that every acknowledged
// insert survived the storm: AckedLost must print 0.
func (b *bench) chaosExp() {
	ds, qs := b.subset(min(b.n2, 10000), 100)
	fmt.Println("=== Chaos: fault storm against a self-healing loopback gaussd ===")

	dir, err := os.MkdirTemp("", "gaussbench-chaos-*")
	check(err)
	defer os.RemoveAll(dir)
	rep := &chaosReport{}

	// Phase one: the disarmed fault layer's overhead on the hot read path.
	// Both variants are warmed file-backed indexes over the same data; the
	// rounds alternate between them and the best round counts, so scheduler
	// and GC noise cannot masquerade as fault-layer cost.
	build := func(path string, inj *gausstree.FaultInjector) *gausstree.Tree {
		tr, err := gausstree.New(ds.Dim, gausstree.Options{Path: path, PageSize: b.pageSize, Fault: inj})
		check(err)
		check(tr.BulkLoad(ds.Vectors))
		for _, q := range qs { // warm both cache layers
			_, _, err := tr.KMLIQContext(context.Background(), q.Vector, 3)
			check(err)
		}
		return tr
	}
	plain := build(dir+"/plain.gtree", nil)
	wrapped := build(dir+"/wrapped.gtree", gausstree.NewFaultInjector())
	hotNs := func(tr *gausstree.Tree) float64 {
		ctx := context.Background()
		const passes = 3
		start := time.Now()
		for p := 0; p < passes; p++ {
			for _, q := range qs {
				_, _, err := tr.KMLIQContext(ctx, q.Vector, 3)
				check(err)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(passes*len(qs))
	}
	baseNs, disarmedNs := math.Inf(1), math.Inf(1)
	for round := 0; round < 5; round++ {
		runtime.GC()
		baseNs = math.Min(baseNs, hotNs(plain))
		disarmedNs = math.Min(disarmedNs, hotNs(wrapped))
	}
	check(plain.Close())
	check(wrapped.Close())
	rep.DisarmedOverheadPct = (disarmedNs - baseNs) / baseNs * 100

	// Phase two: the storm. A file-backed daemon with supervisor + scrubber.
	path := dir + "/storm.gtree"
	inj := gausstree.NewFaultInjector()
	opts := gausstree.Options{Path: path, PageSize: b.pageSize, Fault: inj, CommitLatency: 200 * time.Microsecond}
	tr, err := gausstree.New(ds.Dim, opts)
	check(err)
	check(tr.BulkLoad(ds.Vectors))
	srv := server.New(server.TreeIndex(tr), server.Config{
		RecoveryBase:  2 * time.Millisecond,
		RecoveryMax:   50 * time.Millisecond,
		ScrubInterval: 25 * time.Millisecond,
		ScrubRate:     -1,
		Reopen: func() (server.Index, error) {
			t2, err := gausstree.Open(path, opts)
			if err != nil {
				return nil, err
			}
			return server.TreeIndex(t2), nil
		},
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go srv.Serve(l)
	cl, err := client.New(l.Addr().String(), client.Options{RetryBase: 2 * time.Millisecond, MaxRetries: 8, RetryBudget: -1})
	check(err)
	defer cl.Close()
	// The insert worker never retries: a degraded rejection is counted and
	// the next insert follows immediately, keeping write pressure on the
	// daemon through every fault window instead of sleeping out Retry-After.
	mcl, err := client.New(l.Addr().String(), client.Options{MaxRetries: -1})
	check(err)
	defer mcl.Close()
	ctx := context.Background()

	var (
		stop      = make(chan struct{})
		wg        sync.WaitGroup
		qOK, qRej atomic.Int64
		ackedMu   sync.Mutex
		acked     []uint64
		insRej    atomic.Int64
	)
	for w := 0; w < 2; w++ { // query workers
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := qs[rng.Intn(len(qs))]
				if _, _, err := cl.KMLIQ(ctx, q.Vector, 3); err != nil {
					qRej.Add(1)
				} else {
					qOK.Add(1)
				}
			}
		}(int64(1 + w))
	}
	wg.Add(1)
	go func() { // insert worker: acknowledged means durable forever
		defer wg.Done()
		fresh := freshVectors(ds, 4096, 99)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v := fresh[i%len(fresh)]
			v.ID = uint64(2_000_000 + i)
			id := v.ID
			n, err := mcl.Insert(ctx, []gausstree.Vector{v})
			if n == 1 {
				ackedMu.Lock()
				acked = append(acked, id)
				ackedMu.Unlock()
			}
			if err != nil {
				insRej.Add(1)
			}
		}
	}()

	schedules := []gausstree.FaultSchedule{
		{Seed: 201, Ops: map[gausstree.FaultOp]gausstree.FaultRule{gausstree.FaultOpWALWrite: {Prob: 0.5, MaxFaults: 2}}},
		{Seed: 202, Ops: map[gausstree.FaultOp]gausstree.FaultRule{gausstree.FaultOpPageWrite: {Prob: 0.5, MaxFaults: 1, Torn: true}}},
		{Seed: 203, Ops: map[gausstree.FaultOp]gausstree.FaultRule{gausstree.FaultOpWALSync: {Prob: 0.5, MaxFaults: 2}}},
		{Seed: 204, Ops: map[gausstree.FaultOp]gausstree.FaultRule{gausstree.FaultOpMetaWrite: {Prob: 0.5, MaxFaults: 1}}},
		{Seed: 205, Ops: map[gausstree.FaultOp]gausstree.FaultRule{
			gausstree.FaultOpWALWrite:  {Prob: 0.3, MaxFaults: 1},
			gausstree.FaultOpPageWrite: {Prob: 0.3, MaxFaults: 1, Torn: true},
		}},
	}
	// A readiness monitor observes every degraded window: it polls /readyz
	// continuously and records how long each unhealthy stretch lasted —
	// the client-visible heal latency, including windows that open and close
	// while a schedule is still armed.
	rep.Rounds = len(schedules)
	var (
		monStop   = make(chan struct{})
		monDone   = make(chan struct{})
		healTotal time.Duration
		healMax   time.Duration
	)
	go func() {
		defer close(monDone)
		var downSince time.Time
		for {
			select {
			case <-monStop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if cl.Ready(ctx) != nil {
				if downSince.IsZero() {
					downSince = time.Now()
				}
				continue
			}
			if !downSince.IsZero() {
				rep.Degradations++
				window := time.Since(downSince)
				healTotal += window
				if window > healMax {
					healMax = window
				}
				downSince = time.Time{}
			}
		}
	}()

	for _, sched := range schedules {
		check(inj.Arm(sched))
		time.Sleep(60 * time.Millisecond)
		for _, n := range inj.Status().Injected { // counters reset on Arm
			rep.FaultsInjected += n
		}
		inj.Disarm()
		for cl.Ready(ctx) != nil { // settle before the next round
			time.Sleep(2 * time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
	close(monStop)
	<-monDone
	if rep.Degradations > 0 {
		rep.MeanHealMillis = float64(healTotal.Microseconds()) / 1e3 / float64(rep.Degradations)
		rep.MaxHealMillis = float64(healMax.Microseconds()) / 1e3
	}
	rep.QueriesOK, rep.QueriesRejected = int(qOK.Load()), int(qRej.Load())
	rep.InsertsAcked, rep.InsertsRejected = len(acked), int(insRej.Load())
	if st, err := cl.Stats(ctx); err == nil && st.Scrub != nil {
		rep.ScrubRuns, rep.ScrubPages = st.Scrub.Runs, st.Scrub.Pages
	}

	// Cold reopen: every acknowledged insert must have survived the storm.
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	check(srv.Shutdown(sctx))
	re, err := gausstree.Open(path)
	check(err)
	defer re.Close()
	ids := make(map[uint64]bool, len(acked))
	check(re.ForEach(func(v gausstree.Vector) error {
		ids[v.ID] = true
		return nil
	}))
	for _, id := range acked {
		if !ids[id] {
			rep.AckedLost++
		}
	}

	fmt.Printf("disarmed fault-layer overhead on hot k-MLIQ: %+.1f%% (budget <=2%%)\n", rep.DisarmedOverheadPct)
	fmt.Printf("%-10s %8s %8s %10s %10s %9s %9s %8s %8s %6s\n",
		"rounds", "faults", "degr", "heal ms", "max ms", "q ok", "q rej", "ins ok", "ins rej", "lost")
	fmt.Printf("%-10d %8d %8d %10.1f %10.1f %9d %9d %8d %8d %6d\n",
		rep.Rounds, rep.FaultsInjected, rep.Degradations, rep.MeanHealMillis, rep.MaxHealMillis,
		rep.QueriesOK, rep.QueriesRejected, rep.InsertsAcked, rep.InsertsRejected, rep.AckedLost)
	fmt.Printf("scrubber: %d passes, %d pages verified during the storm\n", rep.ScrubRuns, rep.ScrubPages)
	if rep.AckedLost > 0 {
		fmt.Fprintf(os.Stderr, "gaussbench: CHAOS FAILURE: %d acknowledged inserts lost\n", rep.AckedLost)
		os.Exit(1)
	}
	fmt.Println()
	b.out.Chaos = rep
}

// freshVectors derives n insertable vectors not present in ds: existing
// vectors re-identified under fresh ids with jittered means, so the inserts
// land all over the indexed space like real arrivals would.
func freshVectors(ds *dataset.Dataset, n int, seed int64) []pfv.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]pfv.Vector, n)
	for i := range out {
		src := ds.Vectors[rng.Intn(len(ds.Vectors))]
		mean := make([]float64, ds.Dim)
		sigma := make([]float64, ds.Dim)
		for j := 0; j < ds.Dim; j++ {
			mean[j] = src.Mean[j] + rng.NormFloat64()*src.Sigma[j]
			sigma[j] = src.Sigma[j]
		}
		out[i] = pfv.MustNew(uint64(1_000_000+i), mean, sigma)
	}
	return out
}

// pctMillis returns the p-quantile of lat in milliseconds; lat must be sorted.
func pctMillis(lat []time.Duration, p float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	return float64(lat[int(float64(len(lat)-1)*p)].Microseconds()) / 1e3
}

// readLatencies runs 3-MLIQ queries against tr until stop closes (or, with a
// nil stop, for exactly count queries), returning the sorted latencies. The
// pause between queries makes each reader a latency sampler rather than a
// CPU-saturating load generator: on small machines spinning readers would
// starve the writers and measure scheduler pressure, not the read path.
func readLatencies(tr *gausstree.Tree, qs []dataset.Query, stop <-chan struct{}, count int, pause time.Duration) []time.Duration {
	var lat []time.Duration
	for i := 0; ; i++ {
		if stop != nil {
			select {
			case <-stop:
				sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
				return lat
			default:
			}
		} else if i >= count {
			sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
			return lat
		}
		q := qs[i%len(qs)].Vector
		t0 := time.Now()
		if _, err := tr.KMostLikely(q, 3); err != nil {
			check(err)
		}
		lat = append(lat, time.Since(t0))
		if pause > 0 {
			time.Sleep(pause)
		}
	}
}

// ingest measures the non-blocking write path end to end; see ingestReport.
func (b *bench) ingest() {
	ds, qs := b.subset(min(b.n2, 20000), 200)
	fmt.Println("=== Ingest: non-blocking durable write path (DS2 subset) ===")
	dir, err := os.MkdirTemp("", "gaussbench-ingest")
	check(err)
	defer os.RemoveAll(dir)

	const (
		writers     = 32
		readers     = 4
		serial      = 150
		readerPause = 2 * time.Millisecond
	)
	burst := 6400
	if len(ds.Vectors) < 20000 {
		burst = 3200 // -quick
	}
	fresh := freshVectors(ds, burst, 99)

	// Serialized baseline: before the WAL, the only way to make one insert
	// durable was a full checkpoint (Sync) after it. The tiny CommitLatency
	// keeps the log from adding artificial ack delay on top.
	ser, err := gausstree.New(ds.Dim, gausstree.Options{
		Path: dir + "/serial.gtree", PageSize: b.pageSize, CommitLatency: time.Microsecond,
	})
	check(err)
	check(ser.BulkLoad(ds.Vectors))
	start := time.Now()
	for _, v := range fresh[:serial] {
		check(ser.Insert(v))
		check(ser.Sync())
	}
	serRate := float64(serial) / time.Since(start).Seconds()
	check(ser.Close())

	tr, err := gausstree.New(ds.Dim, gausstree.Options{Path: dir + "/burst.gtree", PageSize: b.pageSize})
	check(err)
	check(tr.BulkLoad(ds.Vectors))

	// Idle reader baseline, then the burst: every reader latency taken while
	// the writers are still running counts against the 2x-of-idle budget.
	idle := readLatencies(tr, qs, nil, 800, readerPause)

	stop := make(chan struct{})
	lats := make([][]time.Duration, readers)
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			lats[r] = readLatencies(tr, qs, stop, 0, readerPause)
		}(r)
	}
	var wwg sync.WaitGroup
	var cursor atomic.Int64
	cursor.Store(-1)
	start = time.Now()
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			for {
				i := int(cursor.Add(1))
				if i >= burst {
					return
				}
				check(tr.Insert(fresh[i]))
			}
		}()
	}
	wwg.Wait()
	burstWall := time.Since(start)
	close(stop)
	rwg.Wait()
	var during []time.Duration
	for _, l := range lats {
		during = append(during, l...)
	}
	sort.Slice(during, func(a, b int) bool { return during[a] < during[b] })

	ws, _ := tr.WALStats()
	rep := &ingestReport{
		PreLoaded:                len(ds.Vectors),
		BurstInserts:             burst,
		Writers:                  writers,
		Readers:                  readers,
		SerializedInsertsPerSec:  serRate,
		GroupCommitInsertsPerSec: float64(burst) / burstWall.Seconds(),
		IdleP50Millis:            pctMillis(idle, 0.50),
		IdleP99Millis:            pctMillis(idle, 0.99),
		BurstP50Millis:           pctMillis(during, 0.50),
		BurstP99Millis:           pctMillis(during, 0.99),
		ReaderSamples:            len(during),
		WALFsyncs:                ws.Fsyncs,
		WALRecords:               ws.Records,
		MeanGroupSize:            ws.MeanGroupSize,
		SnapshotEpoch:            tr.SnapshotEpoch(),
	}
	rep.InsertSpeedup = rep.GroupCommitInsertsPerSec / rep.SerializedInsertsPerSec
	check(tr.Close())

	// Merge-ingest mode: a fixed object population observed over and over;
	// the durable tree absorbs the stream without growing.
	const objects, obsPer, observers = 40, 60, 8
	bases := freshVectors(ds, objects, 7)
	obs := make([]pfv.Vector, 0, objects*obsPer)
	rng := rand.New(rand.NewSource(8))
	for r := 0; r < obsPer; r++ {
		for _, base := range bases {
			mean := make([]float64, ds.Dim)
			for j := range mean {
				mean[j] = base.Mean[j] + rng.NormFloat64()*base.Sigma[j]*0.2
			}
			obs = append(obs, pfv.MustNew(base.ID, mean, base.Sigma))
		}
	}
	ing, err := gausstree.New(ds.Dim, gausstree.Options{
		Path: dir + "/merge.gtree", PageSize: b.pageSize,
		Ingest: &gausstree.IngestOptions{MergeDistance: 2},
	})
	check(err)
	cursor.Store(-1)
	start = time.Now()
	var owg sync.WaitGroup
	for w := 0; w < observers; w++ {
		owg.Add(1)
		go func() {
			defer owg.Done()
			for {
				i := int(cursor.Add(1))
				if i >= len(obs) {
					return
				}
				check(ing.Insert(obs[i]))
			}
		}()
	}
	owg.Wait()
	mergeWall := time.Since(start)
	ist, _ := ing.IngestStats()
	rep.MergeObservations = len(obs)
	rep.MergeObsPerSec = float64(len(obs)) / mergeWall.Seconds()
	rep.MergedShare = float64(ist.Merged) / float64(len(obs))
	check(ing.Close())

	fmt.Printf("%-36s %14.0f\n", "serialized inserts/s (checkpoint)", rep.SerializedInsertsPerSec)
	fmt.Printf("%-36s %14.0f\n", "group-commit inserts/s", rep.GroupCommitInsertsPerSec)
	fmt.Printf("%-36s %13.1fx\n", "insert speedup", rep.InsertSpeedup)
	fmt.Printf("%-36s %8.3f/%.3f\n", "idle reader p50/p99 ms", rep.IdleP50Millis, rep.IdleP99Millis)
	fmt.Printf("%-36s %8.3f/%.3f\n", "burst reader p50/p99 ms", rep.BurstP50Millis, rep.BurstP99Millis)
	fmt.Printf("%-36s %14d\n", "reader samples during burst", rep.ReaderSamples)
	fmt.Printf("%-36s %14d\n", "wal fsyncs", rep.WALFsyncs)
	fmt.Printf("%-36s %14.1f\n", "mean group-commit size", rep.MeanGroupSize)
	fmt.Printf("%-36s %14.0f\n", "merge-ingest observations/s", rep.MergeObsPerSec)
	fmt.Printf("%-36s %13.1f%%\n", "observations merged in place", 100*rep.MergedShare)
	fmt.Println()
	b.out.Ingest = rep
}

// writeJSON emits the collected measurements machine-readably.
func (b *bench) writeJSON(path string) {
	data, err := json.MarshalIndent(&b.out, "", "  ")
	check(err)
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(path, data, 0o644)
	}
	check(err)
	if path != "-" {
		fmt.Printf("# wrote JSON results to %s\n", path)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gaussbench:", err)
		os.Exit(1)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
