// Command gausscli loads probabilistic feature vectors into a Gauss-tree
// and answers identification queries from the command line.
//
// Usage:
//
//	gausscli -data faces.csv -kmliq "0.52,0.05,0.33,0.08" -k 5
//	gausscli -data faces.csv -tiq "0.52,0.05,0.33,0.08" -p 0.1
//
// With -index the tree is persisted: build it once from CSV, then answer
// queries from the durable index in later invocations without reloading the
// data —
//
//	gausscli -data faces.csv -index faces.gtree            # build once
//	gausscli -index faces.gtree -kmliq "0.52,0.05,..."     # query forever
//
// With -addr the queries are answered by a running gaussd daemon over its
// HTTP/JSON API instead of an in-process tree — the same output, served
// remotely:
//
//	gaussd -index faces.gtree -addr :8442 &
//	gausscli -addr localhost:8442 -kmliq "0.52,0.05,..."
//
// Query vectors are given as comma-separated mu,sigma pairs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	gausstree "github.com/gauss-tree/gausstree"
	"github.com/gauss-tree/gausstree/client"
	"github.com/gauss-tree/gausstree/internal/pfv"
)

func main() {
	var (
		data  = flag.String("data", "", "CSV of database pfv (required unless -index points at a built index or -addr at a daemon)")
		index = flag.String("index", "", "persistent index file: built from -data when given, reopened otherwise")
		addr  = flag.String("addr", "", "gaussd address: answer queries remotely instead of in-process")
		kmliq = flag.String("kmliq", "", "k-MLIQ query: mu_1,sigma_1,...")
		tiq   = flag.String("tiq", "", "TIQ query: mu_1,sigma_1,...")
		k     = flag.Int("k", 3, "result count for -kmliq")
		p     = flag.Float64("p", 0.1, "probability threshold for -tiq")
	)
	flag.Parse()
	if *addr != "" {
		if *data != "" || *index != "" {
			fail(fmt.Errorf("-addr queries a running daemon; it cannot be combined with -data or -index"))
		}
		if *kmliq == "" && *tiq == "" {
			flag.Usage()
			os.Exit(2)
		}
		runRemote(*addr, *kmliq, *tiq, *k, *p)
		return
	}
	buildOnly := *data != "" && *index != "" && *kmliq == "" && *tiq == ""
	if (*data == "" && *index == "") || (*kmliq == "" && *tiq == "" && !buildOnly) {
		flag.Usage()
		os.Exit(2)
	}

	var tree *gausstree.Tree
	switch {
	case *data != "":
		vectors := readData(*data)
		dim := vectors[0].Dim()
		var err error
		if *index != "" {
			tree, err = gausstree.New(dim, gausstree.Options{Path: *index})
		} else {
			tree, err = gausstree.New(dim)
		}
		fail(err)
		fail(tree.BulkLoad(vectors))
		if *index != "" {
			fmt.Printf("built %s: %d vectors (%d-d), tree height %d\n", *index, tree.Len(), dim, tree.Height())
		} else {
			fmt.Printf("loaded %d vectors (%d-d), tree height %d\n", tree.Len(), dim, tree.Height())
		}
	default:
		var err error
		tree, err = gausstree.Open(*index)
		fail(err)
		fmt.Printf("opened %s: %d vectors (%d-d), tree height %d\n", *index, tree.Len(), tree.Dim(), tree.Height())
	}
	defer tree.Close()
	dim := tree.Dim()

	if *kmliq != "" {
		q := parseQuery(*kmliq, dim)
		matches, err := tree.KMostLikely(q, *k)
		fail(err)
		fmt.Printf("%d most likely objects:\n", *k)
		printMatches(matches)
	}
	if *tiq != "" {
		q := parseQuery(*tiq, dim)
		matches, err := tree.Threshold(q, *p)
		fail(err)
		fmt.Printf("objects with P(v|q) >= %v:\n", *p)
		printMatches(matches)
	}
}

// runRemote answers the queries through the client package against a running
// gaussd, dogfooding the wire format end to end: the daemon's /v1/stats
// supplies the dimensionality the query parser needs.
func runRemote(addr, kmliq, tiq string, k int, p float64) {
	ctx := context.Background()
	cl, err := client.New(addr)
	fail(err)
	defer cl.Close()
	st, err := cl.Stats(ctx)
	fail(err)
	fmt.Printf("connected to %s: %s index, %d vectors (%d-d)\n", addr, st.Backend, st.Len, st.Dim)

	if kmliq != "" {
		matches, _, err := cl.KMLIQ(ctx, parseQuery(kmliq, st.Dim), k)
		fail(err)
		fmt.Printf("%d most likely objects:\n", k)
		printMatches(matches)
	}
	if tiq != "" {
		matches, _, err := cl.TIQ(ctx, parseQuery(tiq, st.Dim), p)
		fail(err)
		fmt.Printf("objects with P(v|q) >= %v:\n", p)
		printMatches(matches)
	}
}

func readData(path string) []pfv.Vector {
	f, err := os.Open(path)
	fail(err)
	vectors, err := pfv.ReadCSV(f)
	fail(f.Close())
	fail(err)
	if len(vectors) == 0 {
		fail(fmt.Errorf("no vectors in %s", path))
	}
	return vectors
}

func parseQuery(s string, dim int) gausstree.Vector {
	fields := strings.Split(s, ",")
	if len(fields) != 2*dim {
		fail(fmt.Errorf("query needs %d comma-separated values (mu,sigma pairs for %d dimensions), got %d",
			2*dim, dim, len(fields)))
	}
	mean := make([]float64, dim)
	sigma := make([]float64, dim)
	for i := 0; i < dim; i++ {
		var err error
		mean[i], err = strconv.ParseFloat(strings.TrimSpace(fields[2*i]), 64)
		fail(err)
		sigma[i], err = strconv.ParseFloat(strings.TrimSpace(fields[2*i+1]), 64)
		fail(err)
	}
	q, err := gausstree.NewVector(0, mean, sigma)
	fail(err)
	return q
}

func printMatches(ms []gausstree.Match) {
	if len(ms) == 0 {
		fmt.Println("  (none)")
		return
	}
	for i, m := range ms {
		fmt.Printf("  %2d. object %-8d P=%6.2f%%  (certified [%.2f%%, %.2f%%])\n",
			i+1, m.Vector.ID, 100*m.Probability, 100*m.ProbLow, 100*m.ProbHigh)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gausscli:", err)
		os.Exit(1)
	}
}
