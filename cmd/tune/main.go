// Command tune is a development utility: it reports brute-force recall@3 of
// conventional NN search vs the Bayesian MLIQ under the data-set generator
// defaults (optionally sweeping the sigma model), used to calibrate against
// the paper's Figure 6 operating points (NN 42%/61%, MLIQ 98%/99%).
package main

import (
	"flag"
	"fmt"
	"sort"

	"github.com/gauss-tree/gausstree/internal/dataset"
	"github.com/gauss-tree/gausstree/internal/gaussian"
	"github.com/gauss-tree/gausstree/internal/pfv"
)

func measure(ds *dataset.Dataset, qs []dataset.Query) (nn3, ml3 float64) {
	type sc struct {
		id uint64
		v  float64
	}
	nnH, mlH := 0, 0
	for _, q := range qs {
		d := make([]sc, len(ds.Vectors))
		l := make([]sc, len(ds.Vectors))
		for i, v := range ds.Vectors {
			d[i] = sc{v.ID, pfv.EuclideanDistance(v, q.Vector)}
			l[i] = sc{v.ID, pfv.JointLogDensity(gaussian.CombineAdditive, v, q.Vector)}
		}
		sort.Slice(d, func(a, b int) bool { return d[a].v < d[b].v })
		sort.Slice(l, func(a, b int) bool { return l[a].v > l[b].v })
		for i := 0; i < 3 && i < len(d); i++ {
			if d[i].id == q.TruthID {
				nnH++
				break
			}
		}
		for i := 0; i < 3 && i < len(l); i++ {
			if l[i].id == q.TruthID {
				mlH++
				break
			}
		}
	}
	return float64(nnH) / float64(len(qs)), float64(mlH) / float64(len(qs))
}

func main() {
	sweep := flag.Bool("sweep", false, "sweep sigma model")
	n2 := flag.Int("n2", 100000, "data set 2 size")
	queries := flag.Int("queries", 120, "query count")
	flag.Parse()

	if *sweep {
		for _, bm := range []float64{0.015, 0.02} {
			for _, ff := range []float64{0.10, 0.15, 0.20} {
				p1 := dataset.DefaultHistogramParams()
				p1.Clusters = 150
				p1.Sigma.BaseMax = bm
				p1.Sigma.FeatureNoisyFraction = ff
				ds1, _ := dataset.ColorHistograms(p1)
				qs1, _ := dataset.MakeQueries(ds1, dataset.QueryParams{Count: *queries, Sigma: p1.Sigma, Seed: 43})
				nn, ml := measure(ds1, qs1)
				fmt.Printf("DS1 baseMax=%.3f feat=%.2f: NN@3=%.0f%% MLIQ@3=%.0f%% (42/98)\n", bm, ff, nn*100, ml*100)
			}
		}
		for _, bm := range []float64{1.2, 1.5} {
			for _, ff := range []float64{0.10, 0.15, 0.20} {
				p2 := dataset.DefaultSyntheticParams()
				p2.N = *n2
				p2.Sigma.BaseMax = bm
				p2.Sigma.FeatureNoisyFraction = ff
				ds2, _ := dataset.Synthetic(p2)
				qs2, _ := dataset.MakeQueries(ds2, dataset.QueryParams{Count: *queries, Sigma: p2.Sigma, Seed: 42})
				nn, ml := measure(ds2, qs2)
				fmt.Printf("DS2 baseMax=%.1f feat=%.2f: NN@3=%.0f%% MLIQ@3=%.0f%% (61/99)\n", bm, ff, nn*100, ml*100)
			}
		}
		return
	}
	p2 := dataset.DefaultSyntheticParams()
	p2.N = *n2
	ds2, _ := dataset.Synthetic(p2)
	qs2, _ := dataset.MakeQueries(ds2, dataset.QueryParams{Count: *queries, Sigma: p2.Sigma, Seed: 42})
	nn, ml := measure(ds2, qs2)
	fmt.Printf("DS2 defaults (n=%d): NN@3=%.0f%% MLIQ@3=%.0f%% (paper: 61/99)\n", p2.N, nn*100, ml*100)

	p1 := dataset.DefaultHistogramParams()
	ds1, _ := dataset.ColorHistograms(p1)
	qs1, _ := dataset.MakeQueries(ds1, dataset.QueryParams{Count: *queries, Sigma: p1.Sigma, Seed: 43})
	nn, ml = measure(ds1, qs1)
	fmt.Printf("DS1 defaults (n=%d): NN@3=%.0f%% MLIQ@3=%.0f%% (paper: 42/98)\n", p1.N, nn*100, ml*100)
}
