// Command gaussgen writes the paper's evaluation data sets (or custom-sized
// variants) to CSV files in the interchange format of the pfv package
// (id,mu_1,sigma_1,...), together with a matching query workload whose first
// column is the ground-truth object id.
//
// Usage:
//
//	gaussgen -set ds1 -out ds1.csv -queries ds1-queries.csv
//	gaussgen -set ds2 -n 50000 -out ds2.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"github.com/gauss-tree/gausstree/internal/dataset"
	"github.com/gauss-tree/gausstree/internal/pfv"
)

func main() {
	var (
		set     = flag.String("set", "ds2", "data set: ds1 (27-d histograms) or ds2 (10-d synthetic)")
		n       = flag.Int("n", 0, "number of objects (0 = paper default)")
		out     = flag.String("out", "", "output CSV path (required)")
		queries = flag.String("queries", "", "optional query workload CSV path")
		nq      = flag.Int("nq", 0, "number of queries (0 = paper default)")
		seed    = flag.Int64("seed", 0, "seed override (0 = default)")
	)
	flag.Parse()
	if *out == "" {
		fail(fmt.Errorf("-out is required"))
	}

	var ds *dataset.Dataset
	var qsigma dataset.SigmaModel
	var defaultQ int
	switch *set {
	case "ds1":
		p := dataset.DefaultHistogramParams()
		if *n > 0 {
			p.N = *n
		}
		if *seed != 0 {
			p.Seed = *seed
		}
		d, err := dataset.ColorHistograms(p)
		fail(err)
		ds, qsigma, defaultQ = d, p.Sigma, 100
	case "ds2":
		p := dataset.DefaultSyntheticParams()
		if *n > 0 {
			p.N = *n
		}
		if *seed != 0 {
			p.Seed = *seed
		}
		d, err := dataset.Synthetic(p)
		fail(err)
		ds, qsigma, defaultQ = d, p.Sigma, 500
	default:
		fail(fmt.Errorf("unknown data set %q", *set))
	}

	f, err := os.Create(*out)
	fail(err)
	fail(pfv.WriteCSV(f, ds.Vectors))
	fail(f.Close())
	fmt.Printf("wrote %d vectors (%d-d) to %s\n", len(ds.Vectors), ds.Dim, *out)

	if *queries == "" {
		return
	}
	count := defaultQ
	if *nq > 0 {
		count = *nq
	}
	qs, err := dataset.MakeQueries(ds, dataset.QueryParams{Count: count, Sigma: qsigma, Seed: 4242})
	fail(err)
	qf, err := os.Create(*queries)
	fail(err)
	w := bufio.NewWriter(qf)
	fmt.Fprintln(w, "# truth_id,mu_1,sigma_1,...")
	for _, q := range qs {
		fmt.Fprintf(w, "%d", q.TruthID)
		for j := range q.Vector.Mean {
			fmt.Fprintf(w, ",%s,%s",
				strconv.FormatFloat(q.Vector.Mean[j], 'g', -1, 64),
				strconv.FormatFloat(q.Vector.Sigma[j], 'g', -1, 64))
		}
		fmt.Fprintln(w)
	}
	fail(w.Flush())
	fail(qf.Close())
	fmt.Printf("wrote %d queries to %s\n", count, *queries)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gaussgen:", err)
		os.Exit(1)
	}
}
