package gausstree

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gauss-tree/gausstree/internal/core"
	"github.com/gauss-tree/gausstree/internal/fault"
	"github.com/gauss-tree/gausstree/internal/gaussian"
	"github.com/gauss-tree/gausstree/internal/pagefile"
	"github.com/gauss-tree/gausstree/internal/pfv"
	"github.com/gauss-tree/gausstree/internal/query"
	"github.com/gauss-tree/gausstree/internal/wal"
)

// Vector is a probabilistic feature vector: an object id plus per-dimension
// observed values (Mean) and their uncertainties (Sigma).
type Vector = pfv.Vector

// NewVector validates and constructs a probabilistic feature vector.
func NewVector(id uint64, mean, sigma []float64) (Vector, error) {
	return pfv.New(id, mean, sigma)
}

// MustVector is NewVector but panics on invalid input.
func MustVector(id uint64, mean, sigma []float64) Vector {
	return pfv.MustNew(id, mean, sigma)
}

// Combiner selects the σ-combination rule of the joint-probability lemma.
type Combiner = gaussian.Combiner

// Available σ-combination rules: the paper's additive σv+σq (default) and
// the exact convolution √(σv²+σq²). See the gaussian package for the
// mathematical background; index correctness holds under either.
const (
	CombineAdditive    = gaussian.CombineAdditive
	CombineConvolution = gaussian.CombineConvolution
)

// LeafFormat selects the on-page encoding of leaf nodes. All formats answer
// the same queries; the quantized ones trade leaf bytes for conservatively
// widened (but always sound) pruning bounds backed by exact sidecar pages.
// See the constants for the per-format guarantees.
type LeafFormat = core.LeafFormat

// Available leaf formats.
const (
	// LeafExact (default): columnar float64 leaves; bit-identical query
	// results to the legacy row format at batch-evaluation speed.
	LeafExact = core.LeafExact
	// LeafFloat32: float32 leaf pages (half the leaf bytes) + exact
	// sidecars. Ranked results stay exact; certified probability intervals
	// may widen but always contain the exact tree's interval.
	LeafFloat32 = core.LeafFloat32
	// LeafGrid8: 8-bit VA-file-style grid leaf pages (about a quarter of
	// the leaf bytes) + exact sidecars. Same guarantees as LeafFloat32.
	LeafGrid8 = core.LeafGrid8
	// LeafLegacyRow: the pre-columnar row-major encoding, kept writable
	// for compatibility; readable regardless of the configured format.
	LeafLegacyRow = core.LeafLegacyRow
)

// ParseLeafFormat parses a leaf format name ("exact", "float32", "grid8",
// "legacy-row"); the empty string means LeafExact.
func ParseLeafFormat(s string) (LeafFormat, error) { return core.ParseLeafFormat(s) }

// QueryStats describes what one identification query cost and how it
// terminated (logical page accesses — the paper's central efficiency
// metric — expanded nodes, scored vectors, retained candidates, early
// termination). It is filled by the context-aware query variants. Like
// Vector, it is an alias of the internal engine-layer type, so statistics
// flow through every layer without translation.
type QueryStats = query.Stats

// Match is one answer of an identification query.
type Match struct {
	// Vector is the matching database object.
	Vector Vector
	// Probability is the Bayesian identification probability P(v|q); NaN
	// for ranked-only queries.
	Probability float64
	// ProbLow and ProbHigh are the certified bounds on Probability.
	ProbLow, ProbHigh float64
	// LogDensity is the joint log density ln p(q|v) (a relative score).
	LogDensity float64
}

// Options configure a Tree.
type Options struct {
	// PageSize is the storage page size in bytes (default 8192). For a tree
	// reattached with Open the page size always comes from the file header
	// and this field is ignored.
	PageSize int
	// CacheBytes is the buffer cache budget (default 50 MB).
	CacheBytes int
	// CacheShards is the number of buffer-cache shards (rounded up to a
	// power of two). The default of 0 selects automatically: enough shards
	// (up to 16) that concurrent hot reads do not contend, but never so
	// many that tiny caches lose LRU fidelity. Raise it for very high
	// query concurrency on large caches.
	CacheShards int
	// Combiner is the σ-combination rule (default CombineAdditive). It is
	// persisted in the index meta record; Open restores the combiner the
	// tree was built with and ignores this field.
	Combiner Combiner
	// Path, when non-empty, stores the index in a file instead of memory.
	// New refuses a path that already holds an index (reattach with Open).
	Path string
	// Accuracy is the default absolute accuracy of reported probabilities
	// (default 1e-6). Lower accuracy (larger values) lets queries stop
	// earlier; 0 keeps whatever interval the traversal certified.
	Accuracy float64
	// Partition selects the shard-routing policy of a sharded tree
	// (default PartitionHashByID); unsharded trees ignore it. It is
	// persisted in the sharded manifest; OpenSharded restores the policy
	// the index was built with and ignores this field.
	Partition PartitionPolicy
	// LeafFormat selects the on-page leaf encoding (default LeafExact).
	// It is persisted in the index meta record; Open restores the format
	// the tree was built with and ignores this field.
	LeafFormat LeafFormat
	// CommitLatency is the group-commit window of the write-ahead log on
	// file-backed trees (default 2ms): how long the log committer waits
	// after the first pending record before fsyncing, so concurrent
	// mutations share the fsync. Shorter windows reduce single-insert
	// latency, longer ones batch more records per fsync under load.
	// Memory-backed trees have no WAL and ignore it.
	CommitLatency time.Duration
	// Ingest, when non-nil, switches Insert into online merge-ingest mode:
	// a new vector first probes for a near-duplicate stored Gaussian and,
	// within IngestOptions.MergeDistance, merges into it (moment-matched)
	// instead of growing the tree. See IngestOptions. Unsharded trees
	// only; Sharded ignores it.
	Ingest *IngestOptions
	// Fault, when non-nil, interposes the runtime fault-injection layer
	// between the index and its storage: every page read/write/sync, meta
	// write and write-ahead-log write/fsync consults the injector, which
	// stays inert (one atomic load per I/O) until armed with a
	// FaultSchedule. A sharded tree shares one injector across all shards.
	// Intended for chaos testing a live daemon (gaussd -chaos); see
	// NewFaultInjector. When nil the storage stack is not wrapped at all.
	Fault *FaultInjector
}

func (o *Options) fillDefaults() {
	if o.PageSize <= 0 {
		o.PageSize = pagefile.DefaultPageSize
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 50 << 20
	}
	if o.Accuracy == 0 {
		o.Accuracy = 1e-6
	}
}

// treeState bundles the engine, its page manager and (file-backed only) its
// write-ahead log. It is published through an atomic pointer so that readers
// never take a lock: queries load the state, pin the engine's current root
// snapshot and run entirely against immutable pages, concurrently with any
// writer.
type treeState struct {
	tree *core.Tree
	mgr  *pagefile.Manager
	wal  *wal.Log // nil for memory-backed trees
}

// Tree is a Gauss-tree index over probabilistic feature vectors. It is safe
// for concurrent use by multiple goroutines, and reads never block on
// writes: every query runs against a pinned commit-consistent snapshot
// while mutations proceed (see "Write path & snapshots" in the package
// documentation).
type Tree struct {
	mu   sync.Mutex // serializes mutations and Close; never held by reads
	st   atomic.Pointer[treeState]
	opts Options
	ing  *ingester // non-nil in merge-ingest mode (Options.Ingest)
}

// ErrClosed is returned by operations on a closed tree.
var ErrClosed = errors.New("gausstree: tree is closed")

// New creates an empty Gauss-tree for vectors of the given dimension. With
// Options.Path the index lives in a durable page file; a path that already
// holds an index is rejected so New can never clobber persisted data —
// reattach existing indexes with Open.
func New(dim int, opts ...Options) (*Tree, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	o.fillDefaults()

	var backend pagefile.Backend
	if o.Path != "" {
		fb, err := pagefile.CreateFile(o.Path, o.PageSize)
		if err != nil {
			return nil, err
		}
		backend = fb
	} else {
		backend = pagefile.NewMemBackend(o.PageSize)
	}
	backend = fault.WrapBackend(backend, o.Fault)
	mgr, err := pagefile.NewManager(backend, o.PageSize, pagefile.WithCacheBytes(o.CacheBytes), pagefile.WithCacheShards(o.CacheShards))
	if err != nil {
		backend.Close()
		return nil, err
	}
	tr, err := core.New(mgr, dim, core.Config{Combiner: o.Combiner, LeafFormat: o.LeafFormat})
	if err != nil {
		mgr.Close()
		return nil, err
	}
	var l *wal.Log
	if o.Path != "" {
		l, err = wal.Create(o.Path+".wal", dim, wal.Options{Interval: o.CommitLatency, Fault: walFault(o.Fault)})
		if err == nil {
			err = tr.SetWAL(l)
		}
		if err != nil {
			if l != nil {
				l.Close()
			}
			mgr.Close()
			return nil, err
		}
	}
	t := &Tree{opts: o}
	t.st.Store(&treeState{tree: tr, mgr: mgr, wal: l})
	if o.Ingest != nil {
		t.ing, err = newIngester(*o.Ingest)
		if err != nil {
			t.Close()
			return nil, err
		}
	}
	return t, nil
}

// Open reattaches a Gauss-tree previously persisted at path. Everything the
// tree needs is restored from the file: the page size from the versioned
// header, and the root page, dimension, vector count and build
// configuration (σ-combiner, split objectives) from the last committed meta
// record — so queries against a reopened index return byte-identical
// results. Options may tune the cache budget and probability accuracy;
// PageSize and Combiner are taken from the file and ignored.
//
// Recovery is crash-safe: the double-buffered meta page always yields the
// last fully committed checkpoint, and Open then replays the write-ahead
// log tail (path + ".wal") on top of it — a torn or partial final log
// record is detected by checksum and discarded. A process killed at any
// point therefore reopens to a commit-consistent tree containing every
// acknowledged mutation.
func Open(path string, opts ...Options) (*Tree, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	o.Path = path
	o.fillDefaults()

	fb, err := pagefile.OpenFile(path)
	if err != nil {
		return nil, err
	}
	o.PageSize = fb.PageSize()
	mgr, err := pagefile.NewManager(fault.WrapBackend(fb, o.Fault), fb.PageSize(), pagefile.WithCacheBytes(o.CacheBytes), pagefile.WithCacheShards(o.CacheShards))
	if err != nil {
		fb.Close()
		return nil, err
	}
	tr, err := core.Open(mgr)
	if err != nil {
		mgr.Close()
		return nil, err
	}
	l, tail, err := wal.Open(path+".wal", tr.Dim(), tr.AppliedLSN(), wal.Options{Interval: o.CommitLatency, Fault: walFault(o.Fault)})
	if err == nil {
		if err = tr.ApplyWALTail(tail); err == nil {
			// SetWAL truncates the log: the replayed tail is now folded into
			// the committed meta record.
			err = tr.SetWAL(l)
		}
	}
	if err != nil {
		if l != nil {
			l.Close()
		}
		mgr.Close()
		return nil, err
	}
	t := &Tree{opts: o}
	t.st.Store(&treeState{tree: tr, mgr: mgr, wal: l})
	if o.Ingest != nil {
		t.ing, err = newIngester(*o.Ingest)
		if err == nil {
			err = t.ing.seed(tr)
		}
		if err != nil {
			t.Close()
			return nil, err
		}
	}
	return t, nil
}

// state returns the live engine state or ErrClosed. It is the lock-free
// entry point of every read operation.
func (t *Tree) state() (*treeState, error) {
	st := t.st.Load()
	if st == nil {
		return nil, ErrClosed
	}
	return st, nil
}

// Dim returns the feature dimensionality of the index (0 after Close).
func (t *Tree) Dim() int {
	st := t.st.Load()
	if st == nil {
		return 0
	}
	return st.tree.Dim()
}

// Len returns the number of stored vectors as of the current published
// snapshot (0 after Close).
func (t *Tree) Len() int {
	st := t.st.Load()
	if st == nil {
		return 0
	}
	return st.tree.Len()
}

// Height returns the tree height (1 = the root is a leaf; 0 after Close).
func (t *Tree) Height() int {
	st := t.st.Load()
	if st == nil {
		return 0
	}
	return st.tree.Height()
}

// LeafFormat returns the leaf storage format the index writes.
func (t *Tree) LeafFormat() LeafFormat {
	st := t.st.Load()
	if st == nil {
		return LeafExact
	}
	return st.tree.LeafFormat()
}

// SnapshotEpoch returns the reclamation epoch of the currently published
// root snapshot. It advances by one per committed mutation; monitoring it
// (gaussd exposes it via /v1/stats) shows write progress without touching
// any lock.
func (t *Tree) SnapshotEpoch() uint64 {
	st := t.st.Load()
	if st == nil {
		return 0
	}
	return st.tree.SnapshotEpoch()
}

// PinnedReaders returns the number of outstanding snapshot-reader epoch
// pins — queries (and unclosed cursors) currently blocking page
// reclamation. Exposed by gaussd as the gausstree_pinned_readers gauge.
func (t *Tree) PinnedReaders() int {
	st := t.st.Load()
	if st == nil {
		return 0
	}
	return st.mgr.PinnedReaders()
}

// OldestPinnedEpoch returns the reclamation epoch of the longest-running
// pinned reader, or the current epoch when no reader is pinned. The gap to
// SnapshotEpoch measures how far page reclamation lags behind publishing —
// a stuck or leaked cursor shows up as a growing gap.
func (t *Tree) OldestPinnedEpoch() uint64 {
	st := t.st.Load()
	if st == nil {
		return 0
	}
	return st.mgr.OldestPin()
}

// LimboPages returns the number of freed pages awaiting epoch-safe
// reclamation.
func (t *Tree) LimboPages() int {
	st := t.st.Load()
	if st == nil {
		return 0
	}
	return st.mgr.LimboPages()
}

// WALStats reports write-ahead-log counters of a file-backed tree: total
// fsyncs, total appended records, their ratio (the mean group-commit batch
// size — the central metric of the group-commit write path), and the
// highest appended and durable LSNs (their gap is the group-commit window
// still awaiting fsync). ok is false for memory-backed or closed trees.
func (t *Tree) WALStats() (ws WALStats, ok bool) {
	st := t.st.Load()
	if st == nil || st.wal == nil {
		return WALStats{}, false
	}
	s := st.wal.Stats()
	return WALStats{
		Fsyncs:        s.Fsyncs,
		Records:       s.Records,
		MeanGroupSize: s.MeanGroupSize(),
		AppendedLSN:   s.AppendedLSN,
		DurableLSN:    s.DurableLSN,
	}, true
}

// WALStats are cumulative write-ahead-log counters; see Tree.WALStats.
type WALStats struct {
	// Fsyncs is the number of log fsyncs issued.
	Fsyncs uint64
	// Records is the number of logical records appended.
	Records uint64
	// MeanGroupSize is Records per fsync: how many mutations each
	// group commit amortized (0 before the first fsync).
	MeanGroupSize float64
	// AppendedLSN is the log sequence number of the last appended record;
	// AppendedLSN − DurableLSN is the durability lag of the group-commit
	// window.
	AppendedLSN uint64
	// DurableLSN is the highest log sequence number known fsynced.
	DurableLSN uint64
}

// Insert adds a probabilistic feature vector to the index. Duplicate ids are
// permitted (several observations of the same object may coexist); Delete
// removes one matching copy.
//
// Durability: on a file-backed tree Insert returns once its record is
// fsynced in the write-ahead log — concurrent mutations share that fsync
// (group commit, see Options.CommitLatency) — and the tree pages
// themselves are checkpointed periodically, on Sync and on Close. On a
// memory-backed tree in-memory commit is immediate. If a mutation fails
// mid-flight (an I/O error, not input validation), the tree refuses all
// further mutations to protect the committed state; Close it and reattach
// with Open to recover every acknowledged mutation. This applies to
// Insert, InsertAll, BulkLoad and Delete alike.
//
// In merge-ingest mode (Options.Ingest) Insert may instead fold v into an
// existing near-duplicate stored Gaussian; see IngestOptions.
func (t *Tree) Insert(v Vector) error {
	//lint:ignore ctxflow Insert is the documented context-free compat API; InsertContext is the bounded form.
	return t.InsertContext(context.Background(), v)
}

// InsertContext is Insert with a context bounding the merge-ingest
// near-duplicate probe (Options.Ingest): when the context is cancelled
// before the probe finishes, the insert is abandoned with the context's
// error and the tree is unchanged. Outside merge-ingest mode the context
// is not consulted — the mutation itself is not cancellable once started,
// because aborting a half-applied page write would corrupt the tree.
func (t *Tree) InsertContext(ctx context.Context, v Vector) error {
	t.mu.Lock()
	st := t.st.Load()
	if st == nil {
		t.mu.Unlock()
		return ErrClosed
	}
	if err := checkMutationVector(v, st.tree.Dim()); err != nil {
		t.mu.Unlock()
		return err
	}
	var err error
	if t.ing != nil {
		err = t.ing.insert(ctx, st.tree, v)
	} else {
		err = st.tree.Insert(v)
	}
	t.mu.Unlock()
	if err != nil {
		return err
	}
	return t.waitDurable(st)
}

// waitDurable awaits the group-commit fsync of st's last mutation and, when
// the wait reveals a dead write-ahead log, poisons the tree right away
// under the writer lock. The core would poison it anyway on the next
// mutation (whose log append sees the sticky failure), but poisoning here
// makes the public contract uniform: every mutation after the first one
// that hits a storage fault fails wrapping ErrPoisoned, whether the fault
// surfaced at append time or only at the group fsync.
func (t *Tree) waitDurable(st *treeState) error {
	err := st.tree.WaitDurable()
	if err != nil && errors.Is(err, wal.ErrFailed) {
		t.mu.Lock()
		st.tree.Poison(err)
		t.mu.Unlock()
	}
	return err
}

// InsertAll adds a batch of vectors and returns how many of them are
// durably applied. On success that is len(vs). On error the batch may have
// been applied partially: the returned count is the length of the prefix
// vs[:n] that is both applied and durable — a crash and reopen after
// InsertAll returns (n, err) recovers a tree containing exactly vs[:n] of
// this batch (plus everything committed before it). The remaining vectors
// were not applied and may be retried.
//
// InsertAll always inserts verbatim; merge-ingest mode (Options.Ingest)
// only affects Insert.
func (t *Tree) InsertAll(vs []Vector) (int, error) {
	t.mu.Lock()
	st := t.st.Load()
	if st == nil {
		t.mu.Unlock()
		return 0, ErrClosed
	}
	if err := checkMutationVectors(vs, st.tree.Dim()); err != nil {
		t.mu.Unlock()
		return 0, err
	}
	n, err := st.tree.InsertAll(vs)
	t.mu.Unlock()
	return n, err
}

// BulkLoad builds the index from a vector set in one pass (the tree must be
// empty). Bulk-loaded trees have near-full pages and are both faster to
// build and faster to query than insertion-built ones. BulkLoad commits a
// full checkpoint: it is durable on return without writing the WAL.
func (t *Tree) BulkLoad(vs []Vector) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.st.Load()
	if st == nil {
		return ErrClosed
	}
	if err := checkMutationVectors(vs, st.tree.Dim()); err != nil {
		return err
	}
	if err := st.tree.BulkLoad(vs); err != nil {
		return err
	}
	if t.ing != nil {
		return t.ing.seed(st.tree)
	}
	return nil
}

// Delete removes one stored copy of the exact vector (id, means and sigmas
// must all match) and reports whether one was found. Like Insert it is
// acknowledged once its WAL record is durable.
func (t *Tree) Delete(v Vector) (bool, error) {
	t.mu.Lock()
	st := t.st.Load()
	if st == nil {
		t.mu.Unlock()
		return false, ErrClosed
	}
	if err := checkMutationVector(v, st.tree.Dim()); err != nil {
		t.mu.Unlock()
		return false, err
	}
	found, err := st.tree.Delete(v)
	if found && err == nil && t.ing != nil {
		t.ing.forget(v.ID)
	}
	t.mu.Unlock()
	if !found || err != nil {
		return found, err
	}
	return true, t.waitDurable(st)
}

// KMostLikely answers a k-most-likely identification query (the paper's
// k-MLIQ, Definition 3): the k objects with the highest identification
// probability P(v|q), with probabilities certified to the tree's configured
// accuracy. Results are ordered by descending probability. It is
// KMLIQContext without cancellation or statistics.
func (t *Tree) KMostLikely(q Vector, k int) ([]Match, error) {
	//lint:ignore ctxflow KMostLikely is the documented context-free compat API; the Context form is the bounded one.
	ms, _, err := t.KMLIQContext(context.Background(), q, k)
	return ms, err
}

// KMLIQContext is KMostLikely with cancellation and per-query statistics:
// when ctx is cancelled the traversal stops promptly and returns ctx.Err()
// along with the statistics accumulated so far. Queries from any number of
// goroutines may run concurrently — and concurrently with writers: each
// query pins the snapshot published by the last committed mutation and
// never takes the tree lock.
func (t *Tree) KMLIQContext(ctx context.Context, q Vector, k int) ([]Match, QueryStats, error) {
	st, err := t.state()
	if err != nil {
		return nil, QueryStats{}, err
	}
	if err := errors.Join(checkQueryVector(q, st.tree.Dim()), checkK(k)); err != nil {
		return nil, QueryStats{}, err
	}
	res, stats, err := st.tree.KMLIQ(ctx, q, k, t.opts.Accuracy)
	return toMatches(res), stats, err
}

// KMostLikelyRanked answers a k-MLIQ without computing probability values
// (the paper's basic algorithm, §5.2.1). It touches the fewest pages; the
// returned matches carry log densities and NaN probabilities. It is
// KMLIQRankedContext without cancellation or statistics.
func (t *Tree) KMostLikelyRanked(q Vector, k int) ([]Match, error) {
	//lint:ignore ctxflow KMostLikelyRanked is the documented context-free compat API; the Context form is the bounded one.
	ms, _, err := t.KMLIQRankedContext(context.Background(), q, k)
	return ms, err
}

// KMLIQRankedContext is KMostLikelyRanked with cancellation and per-query
// statistics.
func (t *Tree) KMLIQRankedContext(ctx context.Context, q Vector, k int) ([]Match, QueryStats, error) {
	st, err := t.state()
	if err != nil {
		return nil, QueryStats{}, err
	}
	if err := errors.Join(checkQueryVector(q, st.tree.Dim()), checkK(k)); err != nil {
		return nil, QueryStats{}, err
	}
	res, stats, err := st.tree.KMLIQRanked(ctx, q, k)
	return toMatches(res), stats, err
}

// Threshold answers a threshold identification query (the paper's TIQ,
// Definition 2): every object with P(v|q) ≥ pTheta. Results are ordered by
// descending probability. It is TIQContext without cancellation or
// statistics.
func (t *Tree) Threshold(q Vector, pTheta float64) ([]Match, error) {
	//lint:ignore ctxflow Threshold is the documented context-free compat API; the Context form is the bounded one.
	ms, _, err := t.TIQContext(context.Background(), q, pTheta)
	return ms, err
}

// TIQContext is Threshold with cancellation and per-query statistics.
func (t *Tree) TIQContext(ctx context.Context, q Vector, pTheta float64) ([]Match, QueryStats, error) {
	st, err := t.state()
	if err != nil {
		return nil, QueryStats{}, err
	}
	if err := errors.Join(checkQueryVector(q, st.tree.Dim()), checkPTheta(pTheta)); err != nil {
		return nil, QueryStats{}, err
	}
	res, stats, err := st.tree.TIQ(ctx, q, pTheta, t.opts.Accuracy)
	return toMatches(res), stats, err
}

// Stats reports the I/O counters of the underlying page manager. Like every
// other operation it reports ErrClosed after Close.
func (t *Tree) Stats() (pagefile.Stats, error) {
	st, err := t.state()
	if err != nil {
		return pagefile.Stats{}, err
	}
	return st.mgr.Stats(), nil
}

// ResetStats zeroes the I/O counters. It reports ErrClosed after Close.
func (t *Tree) ResetStats() error {
	st, err := t.state()
	if err != nil {
		return err
	}
	st.mgr.ResetStats()
	return nil
}

// CheckInvariants verifies the structural invariants of the index against
// the current published snapshot; intended for tests and debugging. It runs
// concurrently with writers without blocking them.
func (t *Tree) CheckInvariants() error {
	st, err := t.state()
	if err != nil {
		return err
	}
	return st.tree.CheckInvariants()
}

// ForEach visits every stored vector of one commit-consistent snapshot.
func (t *Tree) ForEach(fn func(Vector) error) error {
	st, err := t.state()
	if err != nil {
		return err
	}
	return st.tree.ForEach(fn)
}

// Sync is an explicit durability barrier: it checkpoints the write-ahead
// log into the tree's committed meta record (truncating the log) and
// flushes the page file. Mutations are already durable when they return —
// Sync only bounds the recovery replay work and frees log space.
func (t *Tree) Sync() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.st.Load()
	if st == nil {
		return ErrClosed
	}
	if err := st.tree.Checkpoint(); err != nil {
		return err
	}
	return st.mgr.Sync()
}

// Quarantine makes the tree permanently write-inert without closing it:
// the engine is poisoned (mutations and checkpoints refuse wrapping
// ErrPoisoned, keeping any earlier poisoning cause) and the write-ahead
// log is failed, so neither can ever again write to or truncate the
// underlying files. Reads keep serving the last published snapshot.
//
// It exists for live recovery: before reopening the same files under a
// fresh index (Open replays the WAL), the serving layer quarantines the
// old instance so the two can safely coexist until the old one is Closed.
// Quarantining a closed tree is a no-op.
func (t *Tree) Quarantine(cause error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.st.Load()
	if st == nil {
		return
	}
	st.tree.Poison(cause)
	if st.wal != nil {
		st.wal.Fail(cause)
	}
}

// Close checkpoints the write-ahead log, flushes the underlying storage to
// disk and releases it. The tree is unusable afterwards; a file-backed
// index can be reattached with Open. Queries still in flight when Close is
// called fail with a storage-closed error — drain readers first if that
// matters (gaussd does).
func (t *Tree) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.st.Swap(nil)
	if st == nil {
		return nil
	}
	var errs []error
	if st.wal != nil {
		// Fold the log tail into the meta record so the next Open skips
		// replay. A checkpoint failure is not data loss — every
		// acknowledged mutation is already fsynced in the log and will be
		// replayed — so it does not fail Close.
		st.tree.Checkpoint()
		if err := st.wal.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := st.mgr.Close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// Posterior computes the exact identification probabilities P(vᵢ|q) of a
// candidate-complete vector set under uniform priors, without an index —
// the paper's general solution (§4). It is the reference implementation the
// index is tested against.
func Posterior(c Combiner, db []Vector, q Vector) []float64 {
	return pfv.Posterior(c, db, q)
}

// JointLogDensity returns ln p(q|v), the joint log density of the paper's
// Lemma 1 for two probabilistic feature vectors.
func JointLogDensity(c Combiner, v, q Vector) float64 {
	return pfv.JointLogDensity(c, v, q)
}

func toMatches(rs []query.Result) []Match {
	out := make([]Match, len(rs))
	for i, r := range rs {
		out[i] = Match{
			Vector:      r.Vector,
			Probability: r.Probability,
			ProbLow:     r.ProbLow,
			ProbHigh:    r.ProbHigh,
			LogDensity:  r.LogDensity,
		}
	}
	return out
}
