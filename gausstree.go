package gausstree

import (
	"context"
	"errors"
	"sync"

	"github.com/gauss-tree/gausstree/internal/core"
	"github.com/gauss-tree/gausstree/internal/gaussian"
	"github.com/gauss-tree/gausstree/internal/pagefile"
	"github.com/gauss-tree/gausstree/internal/pfv"
	"github.com/gauss-tree/gausstree/internal/query"
)

// Vector is a probabilistic feature vector: an object id plus per-dimension
// observed values (Mean) and their uncertainties (Sigma).
type Vector = pfv.Vector

// NewVector validates and constructs a probabilistic feature vector.
func NewVector(id uint64, mean, sigma []float64) (Vector, error) {
	return pfv.New(id, mean, sigma)
}

// MustVector is NewVector but panics on invalid input.
func MustVector(id uint64, mean, sigma []float64) Vector {
	return pfv.MustNew(id, mean, sigma)
}

// Combiner selects the σ-combination rule of the joint-probability lemma.
type Combiner = gaussian.Combiner

// Available σ-combination rules: the paper's additive σv+σq (default) and
// the exact convolution √(σv²+σq²). See the gaussian package for the
// mathematical background; index correctness holds under either.
const (
	CombineAdditive    = gaussian.CombineAdditive
	CombineConvolution = gaussian.CombineConvolution
)

// LeafFormat selects the on-page encoding of leaf nodes. All formats answer
// the same queries; the quantized ones trade leaf bytes for conservatively
// widened (but always sound) pruning bounds backed by exact sidecar pages.
// See the constants for the per-format guarantees.
type LeafFormat = core.LeafFormat

// Available leaf formats.
const (
	// LeafExact (default): columnar float64 leaves; bit-identical query
	// results to the legacy row format at batch-evaluation speed.
	LeafExact = core.LeafExact
	// LeafFloat32: float32 leaf pages (half the leaf bytes) + exact
	// sidecars. Ranked results stay exact; certified probability intervals
	// may widen but always contain the exact tree's interval.
	LeafFloat32 = core.LeafFloat32
	// LeafGrid8: 8-bit VA-file-style grid leaf pages (about a quarter of
	// the leaf bytes) + exact sidecars. Same guarantees as LeafFloat32.
	LeafGrid8 = core.LeafGrid8
	// LeafLegacyRow: the pre-columnar row-major encoding, kept writable
	// for compatibility; readable regardless of the configured format.
	LeafLegacyRow = core.LeafLegacyRow
)

// ParseLeafFormat parses a leaf format name ("exact", "float32", "grid8",
// "legacy-row"); the empty string means LeafExact.
func ParseLeafFormat(s string) (LeafFormat, error) { return core.ParseLeafFormat(s) }

// QueryStats describes what one identification query cost and how it
// terminated (logical page accesses — the paper's central efficiency
// metric — expanded nodes, scored vectors, retained candidates, early
// termination). It is filled by the context-aware query variants. Like
// Vector, it is an alias of the internal engine-layer type, so statistics
// flow through every layer without translation.
type QueryStats = query.Stats

// Match is one answer of an identification query.
type Match struct {
	// Vector is the matching database object.
	Vector Vector
	// Probability is the Bayesian identification probability P(v|q); NaN
	// for ranked-only queries.
	Probability float64
	// ProbLow and ProbHigh are the certified bounds on Probability.
	ProbLow, ProbHigh float64
	// LogDensity is the joint log density ln p(q|v) (a relative score).
	LogDensity float64
}

// Options configure a Tree.
type Options struct {
	// PageSize is the storage page size in bytes (default 8192). For a tree
	// reattached with Open the page size always comes from the file header
	// and this field is ignored.
	PageSize int
	// CacheBytes is the buffer cache budget (default 50 MB).
	CacheBytes int
	// CacheShards is the number of buffer-cache shards (rounded up to a
	// power of two). The default of 0 selects automatically: enough shards
	// (up to 16) that concurrent hot reads do not contend, but never so
	// many that tiny caches lose LRU fidelity. Raise it for very high
	// query concurrency on large caches.
	CacheShards int
	// Combiner is the σ-combination rule (default CombineAdditive). It is
	// persisted in the index meta record; Open restores the combiner the
	// tree was built with and ignores this field.
	Combiner Combiner
	// Path, when non-empty, stores the index in a file instead of memory.
	// New refuses a path that already holds an index (reattach with Open).
	Path string
	// Accuracy is the default absolute accuracy of reported probabilities
	// (default 1e-6). Lower accuracy (larger values) lets queries stop
	// earlier; 0 keeps whatever interval the traversal certified.
	Accuracy float64
	// Partition selects the shard-routing policy of a sharded tree
	// (default PartitionHashByID); unsharded trees ignore it. It is
	// persisted in the sharded manifest; OpenSharded restores the policy
	// the index was built with and ignores this field.
	Partition PartitionPolicy
	// LeafFormat selects the on-page leaf encoding (default LeafExact).
	// It is persisted in the index meta record; Open restores the format
	// the tree was built with and ignores this field.
	LeafFormat LeafFormat
}

func (o *Options) fillDefaults() {
	if o.PageSize <= 0 {
		o.PageSize = pagefile.DefaultPageSize
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 50 << 20
	}
	if o.Accuracy == 0 {
		o.Accuracy = 1e-6
	}
}

// Tree is a Gauss-tree index over probabilistic feature vectors. It is safe
// for concurrent use by multiple goroutines.
type Tree struct {
	mu   sync.RWMutex
	tree *core.Tree
	mgr  *pagefile.Manager
	opts Options
}

// ErrClosed is returned by operations on a closed tree.
var ErrClosed = errors.New("gausstree: tree is closed")

// New creates an empty Gauss-tree for vectors of the given dimension. With
// Options.Path the index lives in a durable page file; a path that already
// holds an index is rejected so New can never clobber persisted data —
// reattach existing indexes with Open.
func New(dim int, opts ...Options) (*Tree, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	o.fillDefaults()

	var backend pagefile.Backend
	if o.Path != "" {
		fb, err := pagefile.CreateFile(o.Path, o.PageSize)
		if err != nil {
			return nil, err
		}
		backend = fb
	} else {
		backend = pagefile.NewMemBackend(o.PageSize)
	}
	mgr, err := pagefile.NewManager(backend, o.PageSize, pagefile.WithCacheBytes(o.CacheBytes), pagefile.WithCacheShards(o.CacheShards))
	if err != nil {
		backend.Close()
		return nil, err
	}
	tr, err := core.New(mgr, dim, core.Config{Combiner: o.Combiner, LeafFormat: o.LeafFormat})
	if err != nil {
		mgr.Close()
		return nil, err
	}
	return &Tree{tree: tr, mgr: mgr, opts: o}, nil
}

// Open reattaches a Gauss-tree previously persisted at path. Everything the
// tree needs is restored from the file: the page size from the versioned
// header, and the root page, dimension, vector count and build
// configuration (σ-combiner, split objectives) from the last committed meta
// record — so queries against a reopened index return byte-identical
// results. Options may tune the cache budget and probability accuracy;
// PageSize and Combiner are taken from the file and ignored.
//
// Recovery is crash-safe: the double-buffered meta page always yields the
// last fully committed state, so a process killed mid-mutation reopens to a
// consistent tree as of its last completed Insert/InsertAll/Delete/BulkLoad.
func Open(path string, opts ...Options) (*Tree, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	o.Path = path
	o.fillDefaults()

	fb, err := pagefile.OpenFile(path)
	if err != nil {
		return nil, err
	}
	o.PageSize = fb.PageSize()
	mgr, err := pagefile.NewManager(fb, fb.PageSize(), pagefile.WithCacheBytes(o.CacheBytes), pagefile.WithCacheShards(o.CacheShards))
	if err != nil {
		fb.Close()
		return nil, err
	}
	tr, err := core.Open(mgr)
	if err != nil {
		mgr.Close()
		return nil, err
	}
	return &Tree{tree: tr, mgr: mgr, opts: o}, nil
}

// Dim returns the feature dimensionality of the index.
func (t *Tree) Dim() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.tree.Dim()
}

// Len returns the number of stored vectors.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.tree.Len()
}

// Height returns the tree height (1 = the root is a leaf).
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.tree.Height()
}

// LeafFormat returns the leaf storage format the index writes.
func (t *Tree) LeafFormat() LeafFormat {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.tree == nil {
		return LeafExact
	}
	return t.tree.LeafFormat()
}

// Insert adds a probabilistic feature vector to the index. Duplicate ids are
// permitted (several observations of the same object may coexist); Delete
// removes one matching copy.
//
// Mutations are durably committed before they return. If a mutation fails
// mid-flight (an I/O error, not input validation), the tree refuses all
// further mutations to protect the committed on-disk state; Close it and
// reattach with Open to recover the state as of the last completed
// mutation. This applies to Insert, InsertAll, BulkLoad and Delete alike.
func (t *Tree) Insert(v Vector) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.tree == nil {
		return ErrClosed
	}
	return t.tree.Insert(v)
}

// InsertAll adds a batch of vectors.
func (t *Tree) InsertAll(vs []Vector) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.tree == nil {
		return ErrClosed
	}
	return t.tree.InsertAll(vs)
}

// BulkLoad builds the index from a vector set in one pass (the tree must be
// empty). Bulk-loaded trees have near-full pages and are both faster to
// build and faster to query than insertion-built ones.
func (t *Tree) BulkLoad(vs []Vector) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.tree == nil {
		return ErrClosed
	}
	return t.tree.BulkLoad(vs)
}

// Delete removes one stored copy of the exact vector (id, means and sigmas
// must all match) and reports whether one was found.
func (t *Tree) Delete(v Vector) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.tree == nil {
		return false, ErrClosed
	}
	return t.tree.Delete(v)
}

// KMostLikely answers a k-most-likely identification query (the paper's
// k-MLIQ, Definition 3): the k objects with the highest identification
// probability P(v|q), with probabilities certified to the tree's configured
// accuracy. Results are ordered by descending probability. It is
// KMLIQContext without cancellation or statistics.
func (t *Tree) KMostLikely(q Vector, k int) ([]Match, error) {
	ms, _, err := t.KMLIQContext(context.Background(), q, k)
	return ms, err
}

// KMLIQContext is KMostLikely with cancellation and per-query statistics:
// when ctx is cancelled the traversal stops promptly and returns ctx.Err()
// along with the statistics accumulated so far. Queries from any number of
// goroutines may run concurrently.
func (t *Tree) KMLIQContext(ctx context.Context, q Vector, k int) ([]Match, QueryStats, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.tree == nil {
		return nil, QueryStats{}, ErrClosed
	}
	if err := errors.Join(checkQueryVector(q, t.tree.Dim()), checkK(k)); err != nil {
		return nil, QueryStats{}, err
	}
	res, stats, err := t.tree.KMLIQ(ctx, q, k, t.opts.Accuracy)
	return toMatches(res), stats, err
}

// KMostLikelyRanked answers a k-MLIQ without computing probability values
// (the paper's basic algorithm, §5.2.1). It touches the fewest pages; the
// returned matches carry log densities and NaN probabilities. It is
// KMLIQRankedContext without cancellation or statistics.
func (t *Tree) KMostLikelyRanked(q Vector, k int) ([]Match, error) {
	ms, _, err := t.KMLIQRankedContext(context.Background(), q, k)
	return ms, err
}

// KMLIQRankedContext is KMostLikelyRanked with cancellation and per-query
// statistics.
func (t *Tree) KMLIQRankedContext(ctx context.Context, q Vector, k int) ([]Match, QueryStats, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.tree == nil {
		return nil, QueryStats{}, ErrClosed
	}
	if err := errors.Join(checkQueryVector(q, t.tree.Dim()), checkK(k)); err != nil {
		return nil, QueryStats{}, err
	}
	res, stats, err := t.tree.KMLIQRanked(ctx, q, k)
	return toMatches(res), stats, err
}

// Threshold answers a threshold identification query (the paper's TIQ,
// Definition 2): every object with P(v|q) ≥ pTheta. Results are ordered by
// descending probability. It is TIQContext without cancellation or
// statistics.
func (t *Tree) Threshold(q Vector, pTheta float64) ([]Match, error) {
	ms, _, err := t.TIQContext(context.Background(), q, pTheta)
	return ms, err
}

// TIQContext is Threshold with cancellation and per-query statistics.
func (t *Tree) TIQContext(ctx context.Context, q Vector, pTheta float64) ([]Match, QueryStats, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.tree == nil {
		return nil, QueryStats{}, ErrClosed
	}
	if err := errors.Join(checkQueryVector(q, t.tree.Dim()), checkPTheta(pTheta)); err != nil {
		return nil, QueryStats{}, err
	}
	res, stats, err := t.tree.TIQ(ctx, q, pTheta, t.opts.Accuracy)
	return toMatches(res), stats, err
}

// Stats reports the I/O counters of the underlying page manager. Like every
// other operation it reports ErrClosed after Close.
func (t *Tree) Stats() (pagefile.Stats, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.tree == nil {
		return pagefile.Stats{}, ErrClosed
	}
	return t.mgr.Stats(), nil
}

// ResetStats zeroes the I/O counters. It reports ErrClosed after Close.
func (t *Tree) ResetStats() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.tree == nil {
		return ErrClosed
	}
	t.mgr.ResetStats()
	return nil
}

// CheckInvariants verifies the structural invariants of the index; intended
// for tests and debugging.
func (t *Tree) CheckInvariants() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.tree == nil {
		return ErrClosed
	}
	return t.tree.CheckInvariants()
}

// ForEach visits every stored vector.
func (t *Tree) ForEach(fn func(Vector) error) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.tree == nil {
		return ErrClosed
	}
	return t.tree.ForEach(fn)
}

// Sync flushes all written pages to stable storage. Mutations are already
// durably committed when they return; Sync exists for callers that bypass
// the commit path or want an explicit barrier.
func (t *Tree) Sync() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.tree == nil {
		return ErrClosed
	}
	return t.mgr.Sync()
}

// Close flushes the underlying storage to disk and releases it. The tree is
// unusable afterwards; a file-backed index can be reattached with Open.
func (t *Tree) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.tree == nil {
		return nil
	}
	t.tree = nil
	return t.mgr.Close()
}

// Posterior computes the exact identification probabilities P(vᵢ|q) of a
// candidate-complete vector set under uniform priors, without an index —
// the paper's general solution (§4). It is the reference implementation the
// index is tested against.
func Posterior(c Combiner, db []Vector, q Vector) []float64 {
	return pfv.Posterior(c, db, q)
}

// JointLogDensity returns ln p(q|v), the joint log density of the paper's
// Lemma 1 for two probabilistic feature vectors.
func JointLogDensity(c Combiner, v, q Vector) float64 {
	return pfv.JointLogDensity(c, v, q)
}

func toMatches(rs []query.Result) []Match {
	out := make([]Match, len(rs))
	for i, r := range rs {
		out[i] = Match{
			Vector:      r.Vector,
			Probability: r.Probability,
			ProbLow:     r.ProbLow,
			ProbHigh:    r.ProbHigh,
			LogDensity:  r.LogDensity,
		}
	}
	return out
}
